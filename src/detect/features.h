// Per-host feature extraction from flow records.
//
// These are exactly the observables the paper's tests consume (§IV):
//   * average bytes uploaded per flow (volume),
//   * fraction of destination IPs first contacted after the host's first
//     hour of activity (peer churn),
//   * failed-connection rate among initiated flows (data reduction),
//   * per-destination flow interstitial times, pooled across destinations
//     (human-vs-machine timing).
//
// Extraction works on traffic summaries only — no payload is read.
#pragma once

#include <functional>
#include <span>
#include <unordered_map>
#include <vector>

#include "netflow/flow_batch.h"
#include "netflow/trace_set.h"
#include "simnet/address.h"

namespace tradeplot::netflow {
class TraceReader;
}

namespace tradeplot::detect {

/// How θ_vol quantifies a host's traffic volume (ablation knob; the paper
/// argues for kSentPerFlow over kCumulativeBytes in §IV-A).
enum class VolumeMetric {
  kSentPerFlow,           // bytes the host sent / flows it participated in
  kSentPerInitiatedFlow,  // restricted to flows the host initiated
  kCumulativeBytes,       // total bytes sent (the strawman)
};

struct HostFeatures {
  simnet::Ipv4 host;

  std::size_t flows_initiated = 0;
  std::size_t flows_failed = 0;     // among initiated
  std::size_t flows_received = 0;   // host is the responder
  std::uint64_t bytes_sent_initiated = 0;  // sent on flows it initiated
  std::uint64_t bytes_sent_received = 0;   // sent on flows it answered

  std::size_t distinct_dsts = 0;
  std::size_t dsts_after_first_hour = 0;  // first contacted after hour one
  double first_activity = 0.0;            // start of the host's first flow

  /// Pooled per-destination interstitial times between initiated flows.
  std::vector<double> interstitials;

  [[nodiscard]] double failed_rate() const {
    return flows_initiated == 0 ? 0.0
                                : static_cast<double>(flows_failed) /
                                      static_cast<double>(flows_initiated);
  }
  [[nodiscard]] bool initiated_success() const { return flows_initiated > flows_failed; }
  [[nodiscard]] double new_ip_fraction() const {
    return distinct_dsts == 0 ? 0.0
                              : static_cast<double>(dsts_after_first_hour) /
                                    static_cast<double>(distinct_dsts);
  }
  [[nodiscard]] double volume(VolumeMetric metric) const;
};

using FeatureMap = std::unordered_map<simnet::Ipv4, HostFeatures>;

struct FeatureExtractorConfig {
  /// The churn feature's "first hour of activity" horizon (seconds).
  double new_ip_grace = 3600.0;
  /// Predicate selecting the hosts under the administrator's purview
  /// (internal addresses). Required.
  std::function<bool(simnet::Ipv4)> is_internal;
};

/// Computes features for every internal host appearing in `trace`.
/// Flows must be (or will be treated as) time-ordered per host; the
/// extractor sorts a copy of the per-destination timestamps, so unsorted
/// input is handled correctly.
[[nodiscard]] FeatureMap extract_features(const netflow::TraceSet& trace,
                                          const FeatureExtractorConfig& config);

/// Columnar variant: the same features accumulated by scanning SoA batch
/// columns (src/dst/start/bytes/state — the only fields the extractor
/// reads), so a trace held as FlowBatches never materializes records.
/// Batches are processed in order; features are identical to the AoS
/// overload on the equivalent flow sequence.
[[nodiscard]] FeatureMap extract_features(std::span<const netflow::FlowBatch> batches,
                                          const FeatureExtractorConfig& config);

/// Streaming variant: pulls column batches from `reader` until end-of-trace
/// (honoring its error policy), in bounded memory.
[[nodiscard]] FeatureMap extract_features(netflow::TraceReader& reader,
                                          const FeatureExtractorConfig& config);

/// Per-destination initiated-flow start times accumulated during a pass
/// over the flows, before finalization.
using PerDestinationTimes = std::unordered_map<simnet::Ipv4, std::vector<double>>;

/// Folds accumulated per-destination times into `f`: sets distinct_dsts and
/// dsts_after_first_hour (destinations first contacted after
/// f.first_activity + grace) and appends the pooled interstitial samples
/// (consecutive gaps of each destination's *sorted* times). Sorts the time
/// vectors in place. Both the batch and the streaming extractor finalize
/// through this helper, so their features agree exactly — for any arrival
/// order of the flows.
void finalize_destinations(HostFeatures& f, PerDestinationTimes& times, double grace);

/// Convenience predicate for the default campus subnets (128.2/16 and
/// 128.237/16, plus the honeynet block 10.99/16 used by raw bot traces).
[[nodiscard]] bool default_internal_predicate(simnet::Ipv4 addr);

}  // namespace tradeplot::detect
