# Empty compiler generated dependencies file for detect_find_plotters_test.
# This may be replaced when dependencies are built.
