// EINTR/short-read hardening for iostream-backed I/O.
//
// A monitor that runs for days gets signals mid-read: a SIGHUP for config
// reload, a SIGCHLD from a supervisor, a profiler's SIGPROF. With handlers
// installed without SA_RESTART (see util/interrupt.h), a blocked read(2)
// under an std::ifstream returns EINTR, which iostreams surface as a failed
// stream — and a naive reader would misreport a transient interruption as a
// truncated trace. The helpers here retry the interrupted operation and
// accumulate short reads until the request is satisfied, real EOF, a real
// error, or a cooperative shutdown request.
//
// errno discipline: errno is cleared before each stream operation, so a
// failed operation with errno == EINTR is distinguishable from EOF and from
// hard errors. Test streambufs inject EINTR the same way (set errno, return
// eof from underflow/xsputn), which is exactly how glibc filebufs behave.
#pragma once

#include <cstddef>
#include <iosfwd>

namespace tradeplot::util {

/// Reads up to `n` bytes into `dst`, retrying EINTR and accumulating short
/// reads. Returns the byte count actually read:
///  * == n      - full read;
///  * <  n      - end of stream (eofbit), a hard error (stream left failed),
///                or shutdown_requested() arrived during an interrupted read
///                (the stream is cleared; the caller sees a clean short
///                read, which graceful-stop paths treat as end-of-input).
[[nodiscard]] std::size_t read_retry(std::istream& in, char* dst, std::size_t n);

/// Writes all `n` bytes, retrying writes that failed with EINTR. For
/// seekable sinks the retry resumes from the sink's actual put position, so
/// a partially-consumed write is never duplicated; for non-seekable sinks
/// the whole chunk is reissued, which assumes the sink consumed nothing on
/// failure (true for the unbuffered/all-or-nothing sinks this library
/// writes through). Returns false on a hard error or when shutdown was
/// requested mid-retry (stream left failed); true when everything was
/// accepted.
[[nodiscard]] bool write_retry(std::ostream& out, const char* data, std::size_t n);

}  // namespace tradeplot::util
