// Tests for util/clock.h: the injectable time source the service layer's
// timeout, backoff, and checkpoint-interval logic runs on.
#include "util/clock.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>

namespace tradeplot::util {
namespace {

TEST(Clock, SystemClockIsMonotonic) {
  Clock& clock = Clock::system();
  const double a = clock.now();
  const double b = clock.now();
  EXPECT_GE(b, a);
  clock.sleep_for(0.01);
  EXPECT_GE(clock.now(), a + 0.009);
}

TEST(Clock, SystemSingletonIsStable) {
  EXPECT_EQ(&Clock::system(), &Clock::system());
}

TEST(SimulatedClock, StartsWhereTold) {
  SimulatedClock clock(100.0);
  EXPECT_DOUBLE_EQ(clock.now(), 100.0);
}

TEST(SimulatedClock, AutoAdvanceSleepMovesTimeWithoutWaiting) {
  SimulatedClock clock;
  clock.sleep_for(5.0);
  clock.sleep_for(2.5);
  EXPECT_DOUBLE_EQ(clock.now(), 7.5);
  clock.sleep_for(-1.0);  // non-positive sleeps are no-ops
  clock.sleep_for(0.0);
  EXPECT_DOUBLE_EQ(clock.now(), 7.5);
}

TEST(SimulatedClock, ExponentialBackoffScheduleIsExact) {
  // The property FrameSender's retry loop relies on: a test reads the total
  // backoff straight off the clock.
  SimulatedClock clock;
  double backoff = 0.05;
  for (int attempt = 0; attempt < 4; ++attempt) {
    clock.sleep_for(backoff);
    backoff = std::min(backoff * 2.0, 2.0);
  }
  EXPECT_DOUBLE_EQ(clock.now(), 0.05 + 0.10 + 0.20 + 0.40);
}

TEST(SimulatedClock, AdvanceNeverMovesBackward) {
  SimulatedClock clock(10.0);
  clock.advance(-5.0);
  EXPECT_DOUBLE_EQ(clock.now(), 10.0);
  clock.advance(1.0);
  EXPECT_DOUBLE_EQ(clock.now(), 11.0);
}

TEST(SimulatedClock, ManualModeSleeperWakesOnAdvance) {
  SimulatedClock clock(0.0, /*auto_advance=*/false);
  std::atomic<bool> woke{false};
  std::thread sleeper([&] {
    clock.sleep_for(10.0);
    woke.store(true);
  });
  while (clock.sleepers() == 0) std::this_thread::yield();
  EXPECT_FALSE(woke.load());
  clock.advance(9.0);  // not enough: deadline is t=10
  EXPECT_FALSE(woke.load());
  clock.advance(1.5);  // past the deadline
  sleeper.join();
  EXPECT_TRUE(woke.load());
  EXPECT_DOUBLE_EQ(clock.now(), 10.5);
}

TEST(SimulatedClock, WakeAllReleasesSleepersEarly) {
  SimulatedClock clock(0.0, /*auto_advance=*/false);
  std::atomic<int> woke{0};
  std::thread a([&] {
    clock.sleep_for(100.0);
    woke.fetch_add(1);
  });
  std::thread b([&] {
    clock.sleep_for(200.0);
    woke.fetch_add(1);
  });
  while (clock.sleepers() < 2) std::this_thread::yield();
  clock.wake_all();
  a.join();
  b.join();
  EXPECT_EQ(woke.load(), 2);
  EXPECT_DOUBLE_EQ(clock.now(), 0.0);  // wake_all is not an advance
}

}  // namespace
}  // namespace tradeplot::util
