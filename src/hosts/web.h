// Human web-browsing client and web-server behaviour models.
//
// WebClient is the dominant background population at a campus border:
// sessions of page visits separated by heavy-tailed think times, each page
// pulling a handful of objects from a zipf-favoured set of sites. Failure
// rates are low (a percent or two of dials time out), which is what lets
// the paper's data-reduction step discard most of these hosts.
#pragma once

#include <vector>

#include "netflow/app_env.h"
#include "netflow/flow_emit.h"
#include "util/rng.h"

namespace tradeplot::hosts {

// Population-level parameters. Each WebClient *instance* perturbs these
// (think-time scale, failure rate, asset fan-out, favourite-set size) so
// that human hosts are heterogeneous: no two people browse alike, which is
// exactly what keeps human-driven hosts out of tight θ_hm clusters. The
// failure-rate spread also reproduces the wide failed-connection CDF of the
// paper's Fig. 5 (dead links, filtered ports, stale caches, roaming
// laptops full of background apps).
struct WebClientConfig {
  int sessions_min = 1;
  int sessions_max = 3;
  double session_mu = 7.5;  // ~30 min median browsing session
  double session_sigma = 0.8;
  double think_mu = 3.4;        // ~30 s median between page visits
  double think_mu_spread = 0.35;  // per-host offset: uniform(+-spread)
  double think_sigma_lo = 0.85, think_sigma_hi = 1.15;
  int favourite_sites_lo = 15, favourite_sites_hi = 30;
  double zipf_exponent = 0.9;
  double new_site_prob_lo = 0.10, new_site_prob_hi = 0.35;
  int objects_min = 1;  // flows per page (sharded assets, CDNs)
  int objects_max_lo = 3, objects_max_hi = 10;
  /// Fraction of clients that are heavy browsers with high failure rates
  /// (dorm boxes behind broken proxies and the like).
  double heavy_flaky_prob = 0.0;
  double bytes_up_lo = 300, bytes_up_hi = 2500;
  double bytes_down_lo = 4e3, bytes_down_hi = 1.5e6;
  double big_download_prob = 0.03;  // software update / video: tens of MB
};

class WebClient {
 public:
  WebClient(netflow::AppEnv env, simnet::Ipv4 self, util::Pcg32 rng, WebClientConfig config = {});
  void start();

 private:
  void begin_session();
  void browse_loop(double session_end);
  void visit_page(double session_end);
  void background_chatter_loop();

  netflow::AppEnv env_;
  util::Pcg32 rng_;
  netflow::FlowEmitter emit_;
  WebClientConfig config_;
  std::vector<simnet::Ipv4> favourites_;
  // This user's personal draw from the population parameters.
  double flakiness_ = 0.0;
  double think_mu_ = 0.0;
  double think_sigma_ = 1.0;
  double new_site_prob_ = 0.1;
  double fail_prob_ = 0.02;
  int objects_max_ = 6;
};

struct WebServerConfig {
  double inbound_per_hour = 220.0;
  double bytes_req_lo = 250, bytes_req_hi = 2000;
  double bytes_resp_lo = 2e3, bytes_resp_hi = 8e5;
  /// Outbound side-traffic (origin fetches, APIs) so the server appears
  /// among connection initiators at all.
  double outbound_per_hour = 6.0;
};

class WebServer {
 public:
  WebServer(netflow::AppEnv env, simnet::Ipv4 self, util::Pcg32 rng, WebServerConfig config = {});
  void start();

 private:
  void serve_loop();
  void outbound_loop();

  netflow::AppEnv env_;
  util::Pcg32 rng_;
  netflow::FlowEmitter emit_;
  WebServerConfig config_;
};

}  // namespace tradeplot::hosts
