file(REMOVE_RECURSE
  "CMakeFiles/tp_p2p.dir/bittorrent.cpp.o"
  "CMakeFiles/tp_p2p.dir/bittorrent.cpp.o.d"
  "CMakeFiles/tp_p2p.dir/emule.cpp.o"
  "CMakeFiles/tp_p2p.dir/emule.cpp.o.d"
  "CMakeFiles/tp_p2p.dir/gnutella.cpp.o"
  "CMakeFiles/tp_p2p.dir/gnutella.cpp.o.d"
  "CMakeFiles/tp_p2p.dir/kademlia.cpp.o"
  "CMakeFiles/tp_p2p.dir/kademlia.cpp.o.d"
  "CMakeFiles/tp_p2p.dir/node_id.cpp.o"
  "CMakeFiles/tp_p2p.dir/node_id.cpp.o.d"
  "libtp_p2p.a"
  "libtp_p2p.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tp_p2p.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
