// The θ_hm pairwise-distance hot path: pre-PR kernels vs. flat kernels.
//
// Times stats::pairwise_emd and detect::pairwise_bin_l1 against the seed
// implementations (reproduced below verbatim as the `legacy` baseline) for
// several host/signature sizes at 1/2/4/8/auto threads, and verifies the
// determinism contract: every flat EMD matrix is bit-identical to the legacy
// serial matrix, and every parallel flat matrix is bit-identical to the flat
// serial one. The legacy bin-L1 summed histogram bins in unordered_map
// iteration order, so it is compared to the flat kernel within 1e-9 instead
// of bitwise; the flat bin-L1 is still bit-identical across thread counts.
//
//   bench_pairwise [--quick] [--json <path>]
//
// --quick shrinks the matrix sizes for CI smoke runs; --json writes the
// machine-readable report (config, threads, ns/pair, speedups) to <path>.
// TRADEPLOT_THREADS is parsed strictly: a malformed value aborts with the
// pinned config error on stderr and exit code 2.
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <functional>
#include <optional>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "detect/human_machine.h"
#include "stats/emd.h"
#include "util/error.h"
#include "util/json.h"
#include "util/parallel.h"
#include "util/rng.h"

using namespace tradeplot;

namespace legacy {

// The seed repo's kernels, kept as the measurement baseline. Do not
// modernize: the point of this file is to quantify what the flat
// signature-set rewrite bought.

std::vector<double> pairwise_emd(const std::vector<stats::Signature>& sigs,
                                 std::size_t threads) {
  const std::size_t n = sigs.size();
  std::vector<double> d(n * n, 0.0);
  if (n < 2) return d;
  util::parallel_for(0, n, 1, threads, [&](std::size_t i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      const double v = stats::emd_1d(sigs[i], sigs[j]);
      d[i * n + j] = v;
      d[j * n + i] = v;
    }
  });
  return d;
}

std::vector<double> pairwise_bin_l1(const std::vector<stats::Signature>& sigs,
                                    const detect::HumanMachineConfig& config) {
  const double grid = config.fixed_bin_width > 0.0 ? config.fixed_bin_width : 60.0;
  const std::size_t n = sigs.size();
  std::vector<std::unordered_map<long long, double>> binned(n);
  util::parallel_for(0, n, 8, config.threads, [&](std::size_t i) {
    for (const stats::SignaturePoint& p : sigs[i]) {
      binned[i][std::llround(std::floor(p.position / grid))] += p.weight;
    }
  });
  std::vector<double> d(n * n, 0.0);
  util::parallel_for(0, n, 1, config.threads, [&](std::size_t i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      double l1 = 0.0;
      for (const auto& [bin, w] : binned[i]) {
        const auto it = binned[j].find(bin);
        l1 += std::abs(w - (it == binned[j].end() ? 0.0 : it->second));
      }
      for (const auto& [bin, w] : binned[j]) {
        if (!binned[i].contains(bin)) l1 += w;
      }
      d[i * n + j] = l1;
      d[j * n + i] = l1;
    }
  });
  return d;
}

}  // namespace legacy

namespace {

// Raw signatures with a fixed point count: unsorted lognormal positions and
// non-uniform weights, the shape the interstitial histograms feed the kernel.
std::vector<stats::Signature> make_signatures(std::size_t hosts, std::size_t points,
                                              std::uint64_t seed) {
  util::Pcg32 rng(seed);
  std::vector<stats::Signature> sigs(hosts);
  for (auto& sig : sigs) {
    sig.reserve(points);
    for (std::size_t p = 0; p < points; ++p) {
      sig.push_back({rng.lognormal(4.0, 1.2), rng.uniform(0.5, 1.5)});
    }
  }
  return sigs;
}

double time_ms(const std::function<std::vector<double>()>& fn, std::vector<double>& out) {
  const auto t0 = std::chrono::steady_clock::now();
  out = fn();
  const auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::milli>(t1 - t0).count();
}

bool bit_identical(const std::vector<double>& a, const std::vector<double>& b) {
  return a.size() == b.size() &&
         std::memcmp(a.data(), b.data(), a.size() * sizeof(double)) == 0;
}

double max_abs_diff(const std::vector<double>& a, const std::vector<double>& b) {
  double m = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) m = std::max(m, std::abs(a[i] - b[i]));
  return m;
}

struct Run {
  std::size_t threads = 0;
  double legacy_ms = 0.0;
  double flat_ms = 0.0;
  bool bit_identical = false;  // EMD: vs legacy serial; bin-L1: vs flat serial
};

struct ConfigReport {
  const char* kernel = "";
  std::size_t hosts = 0;
  std::size_t points = 0;
  std::size_t pairs = 0;
  std::vector<Run> runs;
  double bin_l1_max_diff_vs_legacy = 0.0;  // bin-L1 only
};

double ns_per_pair(double ms, std::size_t pairs) {
  return pairs == 0 ? 0.0 : ms * 1e6 / static_cast<double>(pairs);
}

void write_json(const std::string& path, bool quick,
                const std::optional<std::size_t>& env_threads,
                const std::vector<ConfigReport>& reports, bool deterministic) {
  std::ofstream out(path);
  if (!out) throw util::IoError("bench_pairwise: cannot write JSON to " + path);
  util::JsonWriter w(out);
  w.begin_object();
  w.kv("bench", "bench_pairwise");
  w.kv("quick", quick);
  w.key("tradeplot_threads");
  if (env_threads) {
    w.value(static_cast<std::uint64_t>(*env_threads));
  } else {
    w.null();
  }
  w.kv("hardware_threads", std::thread::hardware_concurrency());
  w.key("configs");
  w.begin_array();
  for (const ConfigReport& r : reports) {
    w.begin_object();
    w.kv("kernel", r.kernel);
    w.kv("hosts", static_cast<std::uint64_t>(r.hosts));
    w.kv("points_per_signature", static_cast<std::uint64_t>(r.points));
    w.kv("pairs", static_cast<std::uint64_t>(r.pairs));
    if (std::string(r.kernel) == "bin_l1") {
      w.key("max_abs_diff_vs_legacy");
      w.number(r.bin_l1_max_diff_vs_legacy, "%.3e");
    }
    const double flat_serial_ms = r.runs.front().flat_ms;
    w.key("runs");
    w.begin_array();
    for (const Run& run : r.runs) {
      w.begin_object();
      w.kv("threads", static_cast<std::uint64_t>(run.threads));
      w.key("legacy_ms");
      w.number(run.legacy_ms, "%.3f");
      w.key("flat_ms");
      w.number(run.flat_ms, "%.3f");
      w.key("legacy_ns_per_pair");
      w.number(ns_per_pair(run.legacy_ms, r.pairs), "%.1f");
      w.key("flat_ns_per_pair");
      w.number(ns_per_pair(run.flat_ms, r.pairs), "%.1f");
      w.key("speedup_vs_legacy");
      w.number(run.legacy_ms / run.flat_ms, "%.3f");
      w.key("speedup_vs_serial");
      w.number(flat_serial_ms / run.flat_ms, "%.3f");
      w.kv("bit_identical", run.bit_identical);
      w.end_object();
    }
    w.end_array();
    w.end_object();
  }
  w.end_array();
  w.kv("determinism", deterministic ? "pass" : "fail");
  w.end_object();
  out << "\n";
  if (!out.flush()) throw util::IoError("bench_pairwise: cannot write JSON to " + path);
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--quick") {
      quick = true;
    } else if (arg == "--json" && i + 1 < argc) {
      json_path = argv[++i];
    } else {
      std::fprintf(stderr, "usage: bench_pairwise [--quick] [--json <path>]\n");
      return 2;
    }
  }

  // Strict TRADEPLOT_THREADS: a garbage value must fail the run up front,
  // not silently fall back to hardware concurrency mid-benchmark.
  std::optional<std::size_t> env_threads;
  try {
    env_threads = util::threads_env_strict();
  } catch (const util::ConfigError& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return 2;
  }

  std::printf("==============================================================\n");
  std::printf("bench_pairwise - theta_hm distance kernels, legacy vs flat\n");
  std::printf("==============================================================\n");
  std::printf("  hardware threads: %zu, TRADEPLOT_THREADS: %s\n\n",
              static_cast<std::size_t>(std::thread::hardware_concurrency()),
              env_threads ? std::to_string(*env_threads).c_str() : "(unset)");

  struct Shape {
    std::size_t hosts;
    std::size_t points;
  };
  const std::vector<Shape> shapes = quick
      ? std::vector<Shape>{{96, 32}}
      : std::vector<Shape>{{256, 64}, {512, 64}, {512, 256}};
  std::vector<std::size_t> thread_counts = {1};
  if (!quick) {
    thread_counts.push_back(2);
    thread_counts.push_back(4);
    thread_counts.push_back(8);
  }
  const std::size_t auto_threads = util::resolve_threads(0);
  thread_counts.push_back(auto_threads);
  // Drop repeats (e.g. auto == 8, or auto == 1 on a single-core box) so each
  // timing appears once; the serial reference stays first.
  std::vector<std::size_t> unique_counts;
  for (const std::size_t t : thread_counts) {
    if (std::find(unique_counts.begin(), unique_counts.end(), t) == unique_counts.end()) {
      unique_counts.push_back(t);
    }
  }
  thread_counts = std::move(unique_counts);

  std::vector<ConfigReport> reports;
  bool deterministic = true;

  for (const Shape& shape : shapes) {
    const auto sigs = make_signatures(shape.hosts, shape.points, 20100621 + shape.hosts);
    const std::size_t pairs = shape.hosts * (shape.hosts - 1) / 2;

    // -- EMD ---------------------------------------------------------------
    ConfigReport emd;
    emd.kernel = "emd";
    emd.hosts = shape.hosts;
    emd.points = shape.points;
    emd.pairs = pairs;
    std::printf("  %4zu hosts x %3zu points, EMD:\n", shape.hosts, shape.points);
    std::vector<double> legacy_serial;
    std::vector<double> flat_serial;
    for (const std::size_t t : thread_counts) {
      Run run;
      run.threads = t;
      std::vector<double> legacy_m;
      run.legacy_ms = time_ms([&] { return legacy::pairwise_emd(sigs, t); }, legacy_m);
      std::vector<double> flat_m;
      run.flat_ms = time_ms([&] { return stats::pairwise_emd(sigs, t); }, flat_m);
      if (t == thread_counts.front()) {
        legacy_serial = std::move(legacy_m);
        flat_serial = flat_m;
      }
      run.bit_identical = bit_identical(flat_m, legacy_serial) &&
                          bit_identical(flat_m, flat_serial);
      deterministic = deterministic && run.bit_identical;
      std::printf("    %2zu threads  legacy %8.1f ms  flat %8.1f ms  "
                  "speedup %5.2fx  bit-identical: %s\n",
                  t, run.legacy_ms, run.flat_ms, run.legacy_ms / run.flat_ms,
                  run.bit_identical ? "yes" : "NO");
      emd.runs.push_back(run);
    }
    reports.push_back(std::move(emd));

    // -- bin-L1 ------------------------------------------------------------
    ConfigReport l1;
    l1.kernel = "bin_l1";
    l1.hosts = shape.hosts;
    l1.points = shape.points;
    l1.pairs = pairs;
    std::printf("  %4zu hosts x %3zu points, bin-L1:\n", shape.hosts, shape.points);
    detect::HumanMachineConfig cfg;
    std::vector<double> l1_legacy_serial;
    std::vector<double> l1_flat_serial;
    for (const std::size_t t : thread_counts) {
      Run run;
      run.threads = t;
      cfg.threads = t;
      std::vector<double> legacy_m;
      run.legacy_ms = time_ms([&] { return legacy::pairwise_bin_l1(sigs, cfg); }, legacy_m);
      std::vector<double> flat_m;
      run.flat_ms = time_ms([&] { return detect::pairwise_bin_l1(sigs, cfg); }, flat_m);
      if (t == thread_counts.front()) {
        l1_legacy_serial = std::move(legacy_m);
        l1_flat_serial = flat_m;
        l1.bin_l1_max_diff_vs_legacy = max_abs_diff(flat_m, l1_legacy_serial);
      }
      // The legacy kernel summed in hash order, so cross-implementation
      // equality is within rounding; the flat kernel itself is bit-stable
      // across thread counts.
      run.bit_identical = bit_identical(flat_m, l1_flat_serial) &&
                          max_abs_diff(flat_m, l1_legacy_serial) <= 1e-9;
      deterministic = deterministic && run.bit_identical;
      std::printf("    %2zu threads  legacy %8.1f ms  flat %8.1f ms  "
                  "speedup %5.2fx  ok: %s\n",
                  t, run.legacy_ms, run.flat_ms, run.legacy_ms / run.flat_ms,
                  run.bit_identical ? "yes" : "NO");
      l1.runs.push_back(run);
    }
    std::printf("    max |flat - legacy| = %.3e\n\n", l1.bin_l1_max_diff_vs_legacy);
    reports.push_back(std::move(l1));
  }

  std::printf("  determinism: %s\n",
              deterministic ? "PASS (flat matrices bit-identical across thread counts, "
                              "EMD bit-identical to legacy)"
                            : "FAIL");

  if (!json_path.empty()) {
    write_json(json_path, quick, env_threads, reports, deterministic);
    std::printf("  JSON report written to %s\n", json_path.c_str());
  }
  return deterministic ? 0 : 1;
}
