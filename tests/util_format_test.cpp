#include "util/format.h"

#include <gtest/gtest.h>

namespace tradeplot::util {
namespace {

TEST(Format, HumanBytes) {
  EXPECT_EQ(human_bytes(0), "0 B");
  EXPECT_EQ(human_bytes(512), "512 B");
  EXPECT_EQ(human_bytes(1024), "1.00 KB");
  EXPECT_EQ(human_bytes(1536), "1.50 KB");
  EXPECT_EQ(human_bytes(1024.0 * 1024.0), "1.00 MB");
  EXPECT_EQ(human_bytes(3.5 * 1024 * 1024 * 1024), "3.50 GB");
}

TEST(Format, Percent) {
  EXPECT_EQ(percent(0.5), "50.00%");
  EXPECT_EQ(percent(0.0081), "0.81%");
  EXPECT_EQ(percent(1.0, 0), "100%");
}

TEST(Format, HumanDuration) {
  EXPECT_EQ(human_duration(0.5), "0.50s");
  EXPECT_EQ(human_duration(3723), "01:02:03");
  EXPECT_EQ(human_duration(59), "00:00:59");
  EXPECT_EQ(human_duration(86400), "24:00:00");
}

TEST(Format, Fixed) {
  EXPECT_EQ(fixed(3.14159, 2), "3.14");
  EXPECT_EQ(fixed(-1.0, 0), "-1");
  EXPECT_EQ(fixed(2.5, 3), "2.500");
}

TEST(Format, Column) {
  EXPECT_EQ(column("abc", 5), "  abc");
  EXPECT_EQ(column("abcdef", 4), "abcd");
  EXPECT_EQ(column("", 3), "   ");
}

}  // namespace
}  // namespace tradeplot::util
