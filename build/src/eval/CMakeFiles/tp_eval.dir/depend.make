# Empty dependencies file for tp_eval.
# This may be replaced when dependencies are built.
