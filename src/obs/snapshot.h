// Immutable point-in-time view of a metrics registry.
//
// Registry::snapshot() aggregates every per-thread shard into plain values
// and returns them as a MetricsSnapshot — a deep copy that shares no state
// with the live registry, so an exposition pass (Prometheus text, JSON) can
// render it without locks while the hot paths keep mutating the counters.
// Samples are sorted by (name, labels), which makes exposition output
// deterministic and lets the encoders group families by scanning runs of
// equal names.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace tradeplot::obs {

enum class MetricType : std::uint8_t { kCounter, kGauge, kHistogram };

[[nodiscard]] std::string_view to_string(MetricType t);

/// Label set attached to one metric instance, in registration order.
using Labels = std::vector<std::pair<std::string, std::string>>;

/// Aggregated histogram state. `counts[i]` is the number of observations
/// with value <= bounds[i] that did not fit an earlier bucket (i.e. raw
/// per-bucket counts, NOT cumulative — the encoders cumulate); observations
/// above the last bound land in the implicit +Inf bucket, whose raw count is
/// `count - sum(counts)`.
struct HistogramValue {
  std::vector<double> bounds;        // strictly increasing upper bounds
  std::vector<std::uint64_t> counts; // one per bound
  double sum = 0.0;
  std::uint64_t count = 0;
};

struct SnapshotSample {
  std::string name;
  std::string help;
  MetricType type = MetricType::kCounter;
  Labels labels;
  double value = 0.0;        // counter / gauge
  HistogramValue histogram;  // histogram only
};

struct MetricsSnapshot {
  /// Sorted by (name, labels); families are contiguous runs of equal names.
  std::vector<SnapshotSample> samples;
};

}  // namespace tradeplot::obs
