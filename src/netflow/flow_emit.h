// Flow-emission helper shared by the application behaviour models.
//
// Wraps the common patterns — successful TCP exchange, failed connection
// attempt, UDP request/response, inbound connection served by this host —
// so each protocol model reads as protocol logic, not record plumbing.
#pragma once

#include <cstdint>
#include <string_view>

#include "netflow/app_env.h"
#include "util/rng.h"

namespace tradeplot::netflow {

class FlowEmitter {
 public:
  FlowEmitter(netflow::AppEnv* env, simnet::Ipv4 self, util::Pcg32* rng)
      : env_(env), self_(self), rng_(rng) {}

  [[nodiscard]] simnet::Ipv4 self() const { return self_; }
  [[nodiscard]] double now() const { return env_->sim->now(); }

  /// Ephemeral client port (49152-65535).
  [[nodiscard]] std::uint16_t ephemeral_port();

  /// Successful outbound TCP connection: self -> dst.
  void tcp(simnet::Ipv4 dst, std::uint16_t dport, std::uint64_t bytes_up,
           std::uint64_t bytes_down, double duration, std::string_view payload = {});

  /// Failed outbound TCP connection (SYN timeout or RST).
  void tcp_failed(simnet::Ipv4 dst, std::uint16_t dport, bool reset = false);

  /// Outbound UDP exchange; replied=false models a dead peer (0 response
  /// packets -> failed flow).
  void udp(simnet::Ipv4 dst, std::uint16_t dport, std::uint64_t bytes_up,
           std::uint64_t bytes_down, bool replied, std::string_view payload = {});

  /// Inbound TCP connection from an external peer that this host serves
  /// (e.g. uploading a chunk): src=peer, dst=self, bytes_dst=served bytes.
  void inbound_tcp(simnet::Ipv4 peer, std::uint16_t local_port, std::uint64_t bytes_requested,
                   std::uint64_t bytes_served, double duration, std::string_view payload = {});

 private:
  netflow::AppEnv* env_;
  simnet::Ipv4 self_;
  util::Pcg32* rng_;
};

}  // namespace tradeplot::netflow
