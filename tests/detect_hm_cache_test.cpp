// Cross-window θ_hm signature/distance caching: reuse must be gated on the
// timing-buffer content hash, a one-host change must rebuild only that
// host's signature and matrix rows (asserted via the recompute counters),
// verdicts must be bit-identical with the cache on or off, and the warm
// state must survive a checkpoint/restore cycle.
#include "detect/hm_cache.h"

#include <gtest/gtest.h>

#include <sstream>
#include <vector>

#include "detect/find_plotters.h"
#include "detect/human_machine.h"
#include "detect/payload_codec.h"
#include "detect/streaming.h"
#include "netflow/flow_record.h"
#include "obs/metrics.h"
#include "util/error.h"
#include "util/rng.h"

namespace tradeplot::detect {
namespace {

simnet::Ipv4 host(std::uint8_t last_octet) { return simnet::Ipv4(128, 2, 0, last_octet); }

HostFeatures with_interstitials(std::uint8_t last_octet, std::vector<double> gaps) {
  HostFeatures f;
  f.host = host(last_octet);
  f.flows_initiated = gaps.size() + 1;
  f.interstitials = std::move(gaps);
  return f;
}

struct Population {
  FeatureMap features;
  HostSet input;

  void add(HostFeatures f) {
    input.push_back(f.host);
    features.emplace(f.host, std::move(f));
  }
};

// Five machine-timed hosts plus eight human-timed ones, all eligible.
Population population(std::uint64_t seed) {
  util::Pcg32 rng(seed);
  Population pop;
  for (std::uint8_t b = 1; b <= 5; ++b) {
    std::vector<double> gaps(200);
    for (double& g : gaps) g = 30.0 + rng.uniform(-0.5, 0.5);
    pop.add(with_interstitials(b, std::move(gaps)));
  }
  for (std::uint8_t h = 20; h < 28; ++h) {
    std::vector<double> gaps(150);
    for (double& g : gaps) g = rng.lognormal(5.0 + (h % 4) * 0.4, 1.0);
    pop.add(with_interstitials(h, std::move(gaps)));
  }
  return pop;
}

void expect_results_equal(const HumanMachineResult& a, const HumanMachineResult& b) {
  EXPECT_EQ(a.flagged, b.flagged);
  EXPECT_EQ(a.skipped, b.skipped);
  EXPECT_EQ(a.tau_hm, b.tau_hm);  // bitwise: cached values must be exact
  ASSERT_EQ(a.clusters.size(), b.clusters.size());
  for (std::size_t i = 0; i < a.clusters.size(); ++i) {
    EXPECT_EQ(a.clusters[i].members, b.clusters[i].members);
    EXPECT_EQ(a.clusters[i].diameter, b.clusters[i].diameter);
    EXPECT_EQ(a.clusters[i].kept, b.clusters[i].kept);
  }
}

TEST(HmCache, PairKeyIsOrderInsensitiveAndInjective) {
  const simnet::Ipv4 a = host(1), b = host(2), c = host(3);
  EXPECT_EQ(HmCache::pair_key(a, b), HmCache::pair_key(b, a));
  EXPECT_NE(HmCache::pair_key(a, b), HmCache::pair_key(a, c));
  EXPECT_NE(HmCache::pair_key(a, b), HmCache::pair_key(b, c));
}

TEST(HmCache, ContentHashTracksSamplesAndConfig) {
  const std::vector<double> samples = {1.0, 2.5, 4.0};
  const std::vector<double> mutated = {1.0, 2.5, 4.000001};
  const std::uint64_t base = hm_content_hash(samples, 0.0, 0);
  EXPECT_EQ(base, hm_content_hash(samples, 0.0, 0));
  EXPECT_NE(base, hm_content_hash(mutated, 0.0, 0));
  EXPECT_NE(base, hm_content_hash(samples, 60.0, 0));
  EXPECT_NE(base, hm_content_hash(samples, 0.0, 2));
}

TEST(HmCache, FirstWindowIsAllMissesAndMatchesCachelessRun) {
  const Population pop = population(7);
  const HumanMachineResult without = human_machine_test(pop.features, pop.input, {});
  HmCache cache;
  const HumanMachineResult with =
      human_machine_test(pop.features, pop.input, {}, &cache);
  expect_results_equal(without, with);

  const std::uint64_t n = 13, pairs = n * (n - 1) / 2;
  EXPECT_EQ(cache.signatures_built, n);
  EXPECT_EQ(cache.signatures_reused, 0u);
  EXPECT_EQ(cache.distances_computed, pairs);
  EXPECT_EQ(cache.distances_reused, 0u);
  EXPECT_EQ(cache.signatures.size(), n);
  EXPECT_EQ(cache.distances.size(), pairs);
}

TEST(HmCache, IdenticalSecondWindowReusesEverything) {
  const Population pop = population(8);
  HmCache cache;
  const HumanMachineResult first =
      human_machine_test(pop.features, pop.input, {}, &cache);
  const HumanMachineResult second =
      human_machine_test(pop.features, pop.input, {}, &cache);
  expect_results_equal(first, second);

  const std::uint64_t n = 13, pairs = n * (n - 1) / 2;
  EXPECT_EQ(cache.signatures_built, n);  // only the first window built
  EXPECT_EQ(cache.signatures_reused, n);
  EXPECT_EQ(cache.distances_computed, pairs);
  EXPECT_EQ(cache.distances_reused, pairs);
}

TEST(HmCache, OneHostChangeRecomputesOnlyItsRows) {
  Population pop = population(9);
  HmCache cache;
  (void)human_machine_test(pop.features, pop.input, {}, &cache);

  // Mutate one host's timing buffer; every other host is untouched.
  pop.features.at(host(3)).interstitials.push_back(12.25);
  const HumanMachineResult cached =
      human_machine_test(pop.features, pop.input, {}, &cache);
  const HumanMachineResult cold = human_machine_test(pop.features, pop.input, {});
  expect_results_equal(cold, cached);

  const std::uint64_t n = 13, pairs = n * (n - 1) / 2;
  EXPECT_EQ(cache.signatures_built, n + 1);       // only host(3) rebuilt
  EXPECT_EQ(cache.signatures_reused, n - 1);      // everyone else reused
  EXPECT_EQ(cache.distances_computed, pairs + (n - 1));  // host(3)'s rows
  EXPECT_EQ(cache.distances_reused, pairs - (n - 1));    // all other pairs
}

TEST(HmCache, BinL1ModeIsCachedAndBitIdenticalToo) {
  Population pop = population(10);
  HumanMachineConfig config;
  config.distance = HmDistance::kBinL1;
  HmCache cache;
  (void)human_machine_test(pop.features, pop.input, config, &cache);
  pop.features.at(host(22)).interstitials.push_back(500.0);
  const HumanMachineResult cached =
      human_machine_test(pop.features, pop.input, config, &cache);
  const HumanMachineResult cold = human_machine_test(pop.features, pop.input, config);
  expect_results_equal(cold, cached);
  EXPECT_EQ(cache.signatures_built, 14u);
  EXPECT_EQ(cache.distances_computed, 78u + 12u);
}

TEST(HmCache, WarmPrunedWindowAllocatesNoDenseMatrixAndRunsNoKernels) {
  // S3 regression: the cache-warm path used to allocate the full n x n
  // matrix even when every cell was served from cache. On the pruned path a
  // fully-warm window runs zero exact kernels and never allocates quadratic
  // storage — observed through the dense-matrix allocation counter, which
  // only the dense (exhaustive) distance stage bumps.
  const Population pop = population(13);
  HumanMachineConfig pruned;
  pruned.pruning = HmPruning::kPruned;
  HmCache cache;
  const HumanMachineResult cold =
      human_machine_test(pop.features, pop.input, pruned, &cache);

  obs::set_enabled(true);
  obs::Counter& dense_allocs = obs::Registry::global().counter(
      "tradeplot_hm_dense_matrix_total",
      "dense n x n distance matrices allocated by theta_hm");
  const std::uint64_t dense_before = dense_allocs.value();
  const std::uint64_t computed_before = cache.distances_computed;
  const HumanMachineResult warm =
      human_machine_test(pop.features, pop.input, pruned, &cache);
  EXPECT_EQ(dense_allocs.value(), dense_before);
  EXPECT_EQ(cache.distances_computed, computed_before);
  EXPECT_EQ(warm.prune.exact_kernel_evals, 0u);
  expect_results_equal(cold, warm);

  // Contrast: the exhaustive strategy still allocates its matrix on a warm
  // window (the behaviour the pruned path exists to avoid).
  HumanMachineConfig exhaustive;
  exhaustive.pruning = HmPruning::kExhaustive;
  HmCache exhaustive_cache;
  (void)human_machine_test(pop.features, pop.input, exhaustive, &exhaustive_cache);
  (void)human_machine_test(pop.features, pop.input, exhaustive, &exhaustive_cache);
  EXPECT_GT(dense_allocs.value(), dense_before);
  obs::set_enabled(false);
}

TEST(HmCache, ConfigChangeInvalidatesEverything) {
  const Population pop = population(11);
  HumanMachineConfig config;
  HmCache cache;
  (void)human_machine_test(pop.features, pop.input, config, &cache);
  // Same timing buffers, different binning: nothing may be reused.
  config.fixed_bin_width = 45.0;
  (void)human_machine_test(pop.features, pop.input, config, &cache);
  EXPECT_EQ(cache.signatures_built, 26u);
  EXPECT_EQ(cache.signatures_reused, 0u);
  EXPECT_EQ(cache.distances_reused, 0u);
}

TEST(HmCache, EncodeDecodeRoundTripsExactly) {
  const Population pop = population(12);
  HmCache cache;
  (void)human_machine_test(pop.features, pop.input, {}, &cache);
  ASSERT_FALSE(cache.signatures.empty());
  ASSERT_FALSE(cache.distances.empty());

  PayloadWriter w;
  cache.encode(w);
  PayloadReader r(w.bytes());
  HmCache restored;
  restored.decode(r);
  EXPECT_TRUE(r.exhausted());

  EXPECT_EQ(restored.signatures_built, cache.signatures_built);
  EXPECT_EQ(restored.signatures_reused, cache.signatures_reused);
  EXPECT_EQ(restored.distances_computed, cache.distances_computed);
  EXPECT_EQ(restored.distances_reused, cache.distances_reused);
  ASSERT_EQ(restored.signatures.size(), cache.signatures.size());
  for (const auto& [ip, entry] : cache.signatures) {
    ASSERT_TRUE(restored.signatures.contains(ip));
    const HmCache::SignatureEntry& other = restored.signatures.at(ip);
    EXPECT_EQ(other.hash, entry.hash);
    ASSERT_EQ(other.signature.size(), entry.signature.size());
    for (std::size_t i = 0; i < entry.signature.size(); ++i) {
      EXPECT_EQ(other.signature[i].position, entry.signature[i].position);
      EXPECT_EQ(other.signature[i].weight, entry.signature[i].weight);
    }
  }
  ASSERT_EQ(restored.distances.size(), cache.distances.size());
  for (const auto& [key, entry] : cache.distances) {
    ASSERT_TRUE(restored.distances.contains(key));
    EXPECT_EQ(restored.distances.at(key).hash_lo, entry.hash_lo);
    EXPECT_EQ(restored.distances.at(key).hash_hi, entry.hash_hi);
    EXPECT_EQ(restored.distances.at(key).distance, entry.distance);
  }

  // A truncated payload must be rejected, never half-applied.
  const std::string truncated = w.bytes().substr(0, w.bytes().size() / 2);
  PayloadReader bad(truncated);
  HmCache scratch;
  EXPECT_THROW(scratch.decode(bad), util::ParseError);
}

// ---------------------------------------------------------------------------
// Streaming: the cache across real window boundaries.
// ---------------------------------------------------------------------------

constexpr double kWindow = 1000.0;

// Six subject hosts (octets 1-6) plus one sacrificial high-volume host
// (octet 9) that θ_vol excludes, so exactly the six subjects reach θ_hm.
// Every flow is established; the pipeline below is configured so reduction
// and θ_vol pass the subjects through.
struct SpacedTrace {
  std::vector<netflow::FlowRecord> flows;

  // 8 flows from `src` to one external destination, `gap` seconds apart,
  // starting at window_start + gap. Integer gaps keep the window-relative
  // interstitials bit-identical across windows.
  void add_host(std::uint8_t octet, double window_start, double gap,
                std::uint64_t bytes_per_flow) {
    for (int i = 0; i < 8; ++i) {
      netflow::FlowRecord r;
      r.src = host(octet);
      r.dst = simnet::Ipv4(4, 4, octet, 1);
      r.sport = 40000;
      r.dport = 80;
      r.start_time = window_start + gap * (i + 1);
      r.end_time = r.start_time + 1.0;
      r.pkts_src = 10;
      r.pkts_dst = 10;
      r.bytes_src = bytes_per_flow;
      r.bytes_dst = 64;
      r.state = netflow::FlowState::kEstablished;
      flows.push_back(r);
    }
  }

  // One window of traffic. `mutate_first` changes host 1's spacing, altering
  // only that host's timing buffer relative to the previous window.
  void add_window(double window_start, bool mutate_first) {
    for (std::uint8_t h = 1; h <= 6; ++h) {
      const double gap = (h == 1 && mutate_first) ? 27.0 : 20.0 + h;
      add_host(h, window_start, gap, 100u * h);
    }
    add_host(9, window_start, 13.0, 10000);  // sacrificial θ_vol maximum
  }
};

StreamingConfig streaming_config(bool signature_cache) {
  StreamingConfig cfg;
  cfg.window = kWindow;
  cfg.is_internal = default_internal_predicate;
  cfg.signature_cache = signature_cache;
  cfg.pipeline.reduction.percentile = 0.0;
  cfg.pipeline.reduction.comparison = ReductionComparison::kInclusive;
  cfg.pipeline.volume.percentile = 1.0;
  cfg.pipeline.human_machine.min_samples = 5;
  cfg.pipeline.human_machine.min_cluster_size = 3;
  return cfg;
}

std::vector<WindowVerdict> run(const std::vector<netflow::FlowRecord>& flows,
                               const StreamingConfig& cfg, HmCache* final_cache = nullptr) {
  std::vector<WindowVerdict> verdicts;
  StreamingDetector detector(cfg, [&](const WindowVerdict& v) { verdicts.push_back(v); });
  for (const auto& r : flows) detector.ingest(r);
  detector.flush();
  if (final_cache != nullptr) *final_cache = detector.hm_cache();
  return verdicts;
}

void expect_verdicts_equal(const std::vector<WindowVerdict>& a,
                           const std::vector<WindowVerdict>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    SCOPED_TRACE("window " + std::to_string(i));
    EXPECT_EQ(a[i].result.plotters, b[i].result.plotters);
    EXPECT_EQ(a[i].result.vol_or_churn, b[i].result.vol_or_churn);
    EXPECT_EQ(a[i].result.hm.flagged, b[i].result.hm.flagged);
    EXPECT_EQ(a[i].result.hm.tau_hm, b[i].result.hm.tau_hm);  // bitwise
  }
}

TEST(HmCacheStreaming, SecondWindowReusesUnchangedHostsOnly) {
  SpacedTrace trace;
  trace.add_window(0.0, false);
  trace.add_window(kWindow, true);  // host 1's spacing changes

  HmCache cache;
  const auto cached = run(trace.flows, streaming_config(true), &cache);
  ASSERT_EQ(cached.size(), 2u);
  // Both windows funnel exactly the six subjects into θ_hm.
  EXPECT_EQ(cached[0].result.vol_or_churn.size(), 6u);
  EXPECT_EQ(cached[1].result.vol_or_churn.size(), 6u);

  // Window 1: 6 builds, 15 pair computes. Window 2: host 1 rebuilt, its 5
  // rows recomputed, the other 10 pairs and 5 signatures served from cache.
  EXPECT_EQ(cache.signatures_built, 7u);
  EXPECT_EQ(cache.signatures_reused, 5u);
  EXPECT_EQ(cache.distances_computed, 20u);
  EXPECT_EQ(cache.distances_reused, 10u);

  // The cache changes wall clock, never verdicts.
  const auto cold = run(trace.flows, streaming_config(false));
  expect_verdicts_equal(cached, cold);
}

TEST(HmCacheStreaming, KillAndRestoreKeepsTheWarmCache) {
  SpacedTrace trace;
  trace.add_window(0.0, false);
  trace.add_window(kWindow, true);

  const StreamingConfig cfg = streaming_config(true);
  HmCache uninterrupted_cache;
  const auto expected = run(trace.flows, cfg, &uninterrupted_cache);
  ASSERT_EQ(expected.size(), 2u);

  // Kill after the first window-2 flow (window 1's verdict has fired and
  // populated the cache), restore into a fresh detector, finish the trace.
  const std::size_t kill_at = 57;  // 7 hosts x 8 flows + 1
  std::vector<WindowVerdict> verdicts;
  const auto sink = [&](const WindowVerdict& v) { verdicts.push_back(v); };
  std::stringstream image;
  {
    StreamingDetector first(cfg, sink);
    for (std::size_t i = 0; i < kill_at; ++i) first.ingest(trace.flows[i]);
    first.save_checkpoint(image);
  }
  StreamingDetector resumed(cfg, sink);
  resumed.restore_checkpoint(image);
  EXPECT_EQ(resumed.hm_cache().signatures.size(), 6u);  // warm state restored
  EXPECT_EQ(resumed.hm_cache().distances.size(), 15u);
  for (std::size_t i = kill_at; i < trace.flows.size(); ++i)
    resumed.ingest(trace.flows[i]);
  resumed.flush();

  expect_verdicts_equal(verdicts, expected);
  // The resumed window 2 reused the five unchanged hosts from the restored
  // cache — same counters as the uninterrupted run.
  EXPECT_EQ(resumed.hm_cache().signatures_built, uninterrupted_cache.signatures_built);
  EXPECT_EQ(resumed.hm_cache().signatures_reused, uninterrupted_cache.signatures_reused);
  EXPECT_EQ(resumed.hm_cache().distances_computed,
            uninterrupted_cache.distances_computed);
  EXPECT_EQ(resumed.hm_cache().distances_reused, uninterrupted_cache.distances_reused);
}

TEST(HmCacheStreaming, CacheOffLeavesCacheEmpty) {
  SpacedTrace trace;
  trace.add_window(0.0, false);
  HmCache cache;
  (void)run(trace.flows, streaming_config(false), &cache);
  EXPECT_TRUE(cache.signatures.empty());
  EXPECT_TRUE(cache.distances.empty());
  EXPECT_EQ(cache.signatures_built, 0u);
}

}  // namespace
}  // namespace tradeplot::detect
