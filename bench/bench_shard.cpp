// Sharded-detector ingest scaling: how much of the per-flow accumulation
// cost the consistent-hash partition takes off the critical path.
//
// The sharded ingest path is route + apply: a cheap per-row ring lookup on
// the ingest thread, then per-shard accumulator work that runs on worker
// threads, each touching only its own shard. On an N-core box the wall
// clock of one batch is ~ route + max_shard(apply); this bench measures
// exactly those components with single-threaded timing — route_ms from the
// routing pass, apply_ms per shard from replaying each shard's routed op
// list into its own WindowAccumulator — and reports the critical-path model
//
//   critical_path_ms = route_ms + max_s apply_ms[s]
//   model_speedup    = critical_path_ms(shards=1) / critical_path_ms(N)
//
// alongside the real end-to-end ShardedDetector wall time. The model, not
// the wall clock, is the scaling claim: CI boxes (including the one that
// produced BENCH_shard.json) often expose a single hardware thread, where
// parallel sections serialize and wall time cannot show the speedup that
// the same binary reaches with N cores. The model is honest about the
// serial residue (routing) and the partition imbalance (max shard, not
// mean), so it is an Amdahl bound measured, not guessed.
//
//   bench_shard [--quick] [--json <path>] [--shards <n>[,<n>...]]
//
// --quick shrinks the workload for CI smoke runs. TRADEPLOT_THREADS is
// parsed strictly: a malformed value aborts with the pinned config error on
// stderr and exit code 2.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "detect/accumulator.h"
#include "detect/streaming.h"
#include "netflow/flow_batch.h"
#include "shard/ring.h"
#include "shard/sharded_detector.h"
#include "util/error.h"
#include "util/json.h"
#include "util/parallel.h"
#include "util/rng.h"

using namespace tradeplot;

namespace {

double ms_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - t0)
      .count();
}

bool is_internal(simnet::Ipv4 a) { return (a.value() >> 24) == 10; }

/// One detection window of campus-shaped traffic: internal sources fanning
/// out to a large external population (plus some internal-to-internal flows
/// so the responder path is exercised), timestamps nondecreasing.
std::vector<netflow::FlowBatch> make_workload(std::size_t hosts, std::size_t flows,
                                              std::uint64_t seed) {
  util::Pcg32 rng(seed);
  std::vector<netflow::FlowBatch> batches;
  batches.emplace_back();
  const double window = 6 * 3600.0;
  for (std::size_t i = 0; i < flows; ++i) {
    if (batches.back().full()) batches.emplace_back();
    netflow::FlowBatch& b = batches.back();
    const std::size_t row = b.append_default();
    const auto h = static_cast<std::uint32_t>(rng.uniform_int(0, static_cast<long>(hosts) - 1));
    b.src()[row] = simnet::Ipv4(10, static_cast<std::uint8_t>(h >> 8),
                                static_cast<std::uint8_t>(h), 1);
    if (rng.uniform(0.0, 1.0) < 0.15) {
      // internal destination: the flow is routed to two shards
      const auto d =
          static_cast<std::uint32_t>(rng.uniform_int(0, static_cast<long>(hosts) - 1));
      b.dst()[row] = simnet::Ipv4(10, static_cast<std::uint8_t>(d >> 8),
                                  static_cast<std::uint8_t>(d), 2);
    } else {
      b.dst()[row] = simnet::Ipv4(198, static_cast<std::uint8_t>(rng.uniform_int(0, 255)),
                                  static_cast<std::uint8_t>(rng.uniform_int(0, 255)), 7);
    }
    const double t = window * static_cast<double>(i) / static_cast<double>(flows);
    b.start_time()[row] = t;
    b.end_time()[row] = t + 1.0;
    b.bytes_src()[row] = 200 + static_cast<std::uint64_t>(rng.uniform_int(0, 1023));
    b.bytes_dst()[row] = 400 + static_cast<std::uint64_t>(rng.uniform_int(0, 4095));
    b.state()[row] = rng.uniform(0.0, 1.0) < 0.2 ? netflow::FlowState::kAttempted
                                                 : netflow::FlowState::kEstablished;
  }
  return batches;
}

struct ShardReport {
  std::size_t shards = 0;
  double route_ms = 0.0;
  double serial_apply_ms = 0.0;     // sum of all shards' apply time
  double max_shard_apply_ms = 0.0;  // slowest shard (the parallel straggler)
  double critical_path_ms = 0.0;    // route + straggler
  double model_speedup = 0.0;       // vs the shards=1 critical path
  double wall_ms = 0.0;             // real ShardedDetector ingest+flush
  double balance = 0.0;             // max shard ops / mean shard ops
  std::size_t plotters = 0;
};

/// Routes every row exactly the way ShardedDetector::route_row does and
/// returns per-shard op lists (top bit = responder op).
std::vector<std::vector<std::uint32_t>> route_all(
    const std::vector<netflow::FlowBatch>& batches, const shard::HashRing& ring,
    std::vector<std::uint32_t>& flat_rows) {
  std::vector<std::vector<std::uint32_t>> ops(ring.shards());
  std::uint32_t global_row = 0;
  for (const netflow::FlowBatch& b : batches) {
    for (std::size_t i = 0; i < b.size(); ++i, ++global_row) {
      if (is_internal(b.src()[i])) ops[ring.shard_of(b.src()[i])].push_back(global_row);
      if (is_internal(b.dst()[i]) && b.state()[i] == netflow::FlowState::kEstablished)
        ops[ring.shard_of(b.dst()[i])].push_back(global_row | 0x80000000u);
    }
  }
  flat_rows.clear();
  return ops;
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  std::string json_path;
  std::vector<std::size_t> shard_override;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--quick") {
      quick = true;
    } else if (arg == "--json" && i + 1 < argc) {
      json_path = argv[++i];
    } else if (arg == "--shards" && i + 1 < argc) {
      const std::string list = argv[++i];
      std::size_t start = 0;
      while (start <= list.size()) {
        const std::size_t comma = std::min(list.find(',', start), list.size());
        const std::string tok = list.substr(start, comma - start);
        char* end = nullptr;
        const unsigned long long v = std::strtoull(tok.c_str(), &end, 10);
        if (tok.empty() || end == nullptr || *end != '\0' || v == 0) {
          std::fprintf(stderr, "bench_shard: bad --shards value '%s'\n", tok.c_str());
          return 2;
        }
        shard_override.push_back(static_cast<std::size_t>(v));
        start = comma + 1;
      }
    } else {
      std::fprintf(stderr, "usage: bench_shard [--quick] [--json <path>] [--shards <n>[,...]]\n");
      return 2;
    }
  }

  std::optional<std::size_t> env_threads;
  try {
    env_threads = util::threads_env_strict();
  } catch (const util::ConfigError& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return 2;
  }

  std::printf("==============================================================\n");
  std::printf("bench_shard - consistent-hash sharded ingest scaling\n");
  std::printf("==============================================================\n");
  std::printf("  hardware threads: %zu, TRADEPLOT_THREADS: %s\n",
              static_cast<std::size_t>(std::thread::hardware_concurrency()),
              env_threads ? std::to_string(*env_threads).c_str() : "(unset)");

  const std::size_t hosts = quick ? 2048 : 8192;
  const std::size_t flows = quick ? 400000 : 2000000;
  const std::vector<std::size_t> shard_counts =
      !shard_override.empty() ? shard_override : std::vector<std::size_t>{1, 2, 4, 8};
  std::printf("  workload: %zu internal hosts, %zu flows, one 6h window\n\n", hosts, flows);

  const std::vector<netflow::FlowBatch> batches = make_workload(hosts, flows, 20100621);

  std::vector<ShardReport> reports;
  double baseline_critical = 0.0;
  bool deterministic = true;
  std::size_t oracle_plotters = 0;
  bool oracle_set = false;

  for (const std::size_t shards : shard_counts) {
    ShardReport r;
    r.shards = shards;
    const shard::HashRing ring(shards);

    // --- decomposition: route pass, then per-shard apply replay ----------
    std::vector<std::uint32_t> scratch;
    auto t0 = std::chrono::steady_clock::now();
    std::vector<std::vector<std::uint32_t>> ops = route_all(batches, ring, scratch);
    r.route_ms = ms_since(t0);

    // Flatten batch boundaries once so the replay indexes rows directly.
    std::vector<const netflow::FlowBatch*> row_batch;
    std::vector<std::uint32_t> row_in_batch;
    row_batch.reserve(flows);
    row_in_batch.reserve(flows);
    for (const netflow::FlowBatch& b : batches) {
      for (std::size_t i = 0; i < b.size(); ++i) {
        row_batch.push_back(&b);
        row_in_batch.push_back(static_cast<std::uint32_t>(i));
      }
    }

    std::size_t max_ops = 0, total_ops = 0;
    for (std::size_t s = 0; s < shards; ++s) {
      detect::WindowAccumulator acc;
      const auto ts = std::chrono::steady_clock::now();
      for (const std::uint32_t op : ops[s]) {
        const std::uint32_t row = op & 0x7fffffffu;
        const netflow::FlowBatch& b = *row_batch[row];
        const std::uint32_t i = row_in_batch[row];
        if (op & 0x80000000u) {
          acc.apply_responder(b.dst()[i], b.start_time()[i], b.bytes_dst()[i]);
        } else {
          acc.apply_initiator(b.src()[i], b.dst()[i], b.start_time()[i], b.bytes_src()[i],
                              b.state()[i] != netflow::FlowState::kEstablished, 0);
        }
      }
      const double shard_ms = ms_since(ts);
      r.serial_apply_ms += shard_ms;
      r.max_shard_apply_ms = std::max(r.max_shard_apply_ms, shard_ms);
      max_ops = std::max(max_ops, ops[s].size());
      total_ops += ops[s].size();
    }
    r.balance = total_ops == 0 ? 1.0
                               : static_cast<double>(max_ops) * static_cast<double>(shards) /
                                     static_cast<double>(total_ops);
    r.critical_path_ms = r.route_ms + r.max_shard_apply_ms;
    if (shards == 1 || baseline_critical == 0.0)
      baseline_critical = shards == 1 ? r.critical_path_ms : baseline_critical;

    // --- real end-to-end detector run ------------------------------------
    const auto run_detector = [&]() -> std::pair<double, std::size_t> {
      shard::ShardedConfig cfg;
      cfg.shards = shards;
      cfg.window = 6 * 3600.0;
      cfg.is_internal = is_internal;
      std::size_t plotters = 0;
      shard::ShardedDetector det(cfg, [&](const detect::WindowVerdict& v) {
        plotters = v.result.plotters.size();
      });
      const auto tw = std::chrono::steady_clock::now();
      for (const netflow::FlowBatch& b : batches) det.ingest(b);
      det.flush();
      return {ms_since(tw), plotters};
    };
    const auto [wall_ms, plotters] = run_detector();
    r.wall_ms = wall_ms;
    r.plotters = plotters;
    const auto [wall2, plotters2] = run_detector();
    (void)wall2;
    if (plotters2 != plotters) deterministic = false;
    if (shards == 1 && !oracle_set) {
      oracle_plotters = plotters;
      oracle_set = true;
    }

    r.model_speedup = baseline_critical > 0.0 ? baseline_critical / r.critical_path_ms : 1.0;
    reports.push_back(r);

    std::printf("  shards=%zu: route %.1f ms, apply total %.1f ms, straggler %.1f ms\n",
                shards, r.route_ms, r.serial_apply_ms, r.max_shard_apply_ms);
    std::printf("            critical path %.1f ms, model speedup %.2fx, balance %.2f\n",
                r.critical_path_ms, r.model_speedup, r.balance);
    std::printf("            end-to-end wall %.1f ms, %zu plotters%s\n\n", r.wall_ms,
                r.plotters,
                oracle_set && shards == 1 ? " (oracle)" : "");
  }

  std::printf("  determinism (repeat run agreement): %s\n",
              deterministic ? "pass" : "FAIL");
  if (oracle_set)
    std::printf("  shards=1 oracle plotters: %zu\n", oracle_plotters);

  if (!json_path.empty()) {
    std::ofstream out(json_path);
    if (!out) {
      std::fprintf(stderr, "bench_shard: cannot write JSON to %s\n", json_path.c_str());
      return 1;
    }
    util::JsonWriter w(out);
    w.begin_object();
    w.kv("bench", "bench_shard");
    w.kv("quick", quick);
    w.key("tradeplot_threads");
    if (env_threads) {
      w.value(static_cast<std::uint64_t>(*env_threads));
    } else {
      w.null();
    }
    w.kv("hardware_threads", std::thread::hardware_concurrency());
    w.kv("hosts", static_cast<std::uint64_t>(hosts));
    w.kv("flows", static_cast<std::uint64_t>(flows));
    w.key("configs");
    w.begin_array();
    for (const ShardReport& r : reports) {
      w.begin_object();
      w.kv("shards", static_cast<std::uint64_t>(r.shards));
      w.key("route_ms");
      w.number(r.route_ms, "%.3f");
      w.key("serial_apply_ms");
      w.number(r.serial_apply_ms, "%.3f");
      w.key("max_shard_apply_ms");
      w.number(r.max_shard_apply_ms, "%.3f");
      w.key("critical_path_ms");
      w.number(r.critical_path_ms, "%.3f");
      w.key("model_speedup");
      w.number(r.model_speedup, "%.3f");
      w.key("wall_ms");
      w.number(r.wall_ms, "%.3f");
      w.key("balance");
      w.number(r.balance, "%.3f");
      w.kv("plotters", static_cast<std::uint64_t>(r.plotters));
      w.end_object();
    }
    w.end_array();
    w.kv("determinism", deterministic ? "pass" : "fail");
    w.end_object();
    out << "\n";
    if (!out.flush()) {
      std::fprintf(stderr, "bench_shard: cannot write JSON to %s\n", json_path.c_str());
      return 1;
    }
  }
  return deterministic ? 0 : 1;
}
