#include "simnet/simulation.h"

#include <memory>
#include <utility>

namespace tradeplot::simnet {

void Simulation::schedule_at(SimTime when, Callback fn) {
  if (when < now_) when = now_;
  queue_.push(Event{when, next_seq_++, std::move(fn)});
}

void Simulation::schedule_after(SimTime delay, Callback fn) {
  schedule_at(now_ + (delay > 0 ? delay : 0), std::move(fn));
}

std::size_t Simulation::run_until(SimTime end) {
  std::size_t executed = 0;
  while (!queue_.empty() && queue_.top().when <= end) {
    // priority_queue::top() is const; move out via const_cast is UB-adjacent,
    // so copy the callback handle (std::function copy is cheap enough here).
    Event ev = queue_.top();
    queue_.pop();
    now_ = ev.when;
    ev.fn();
    ++executed;
  }
  if (now_ < end) now_ = end;
  return executed;
}

std::size_t Simulation::run_all() {
  std::size_t executed = 0;
  while (!queue_.empty()) {
    Event ev = queue_.top();
    queue_.pop();
    now_ = ev.when;
    ev.fn();
    ++executed;
  }
  return executed;
}

void PeriodicProcess::start(Simulation& sim, SimTime first_delay, SimTime until,
                            NextDelay next_delay, Body body) {
  // Ownership lives only in the pending event's closure: each event holds
  // the shared state and hands it to the next one, so the chain keeps
  // itself alive without an external registry and is freed as soon as the
  // last event runs (or the simulation's queue is destroyed). The state
  // must not hold a shared_ptr to itself — that cycle would never free.
  struct Chain {
    Simulation& sim;
    SimTime until;
    NextDelay next_delay;
    Body body;

    void step(const std::shared_ptr<Chain>& self) {
      if (sim.now() > until) return;
      body(sim.now());
      const double d = next_delay();
      const SimTime next = sim.now() + (d > 0 ? d : 0);
      if (next <= until) sim.schedule_at(next, [self] { self->step(self); });
    }
  };
  auto chain =
      std::make_shared<Chain>(Chain{sim, until, std::move(next_delay), std::move(body)});
  if (sim.now() + first_delay <= until)
    sim.schedule_after(first_delay, [chain] { chain->step(chain); });
}

}  // namespace tradeplot::simnet
