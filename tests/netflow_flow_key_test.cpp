#include "netflow/flow_key.h"

#include <gtest/gtest.h>

namespace tradeplot::netflow {
namespace {

TEST(FlowKey, BothDirectionsCanonicalizeIdentically) {
  const simnet::Ipv4 a(128, 2, 0, 1);
  const simnet::Ipv4 b(5, 6, 7, 8);
  const FlowKey forward = FlowKey::canonical(a, 50000, b, 80, Protocol::kTcp);
  const FlowKey backward = FlowKey::canonical(b, 80, a, 50000, Protocol::kTcp);
  EXPECT_EQ(forward, backward);
  EXPECT_EQ(FlowKeyHash{}(forward), FlowKeyHash{}(backward));
}

TEST(FlowKey, DifferentPortsDiffer) {
  const simnet::Ipv4 a(1, 1, 1, 1);
  const simnet::Ipv4 b(2, 2, 2, 2);
  const FlowKey k1 = FlowKey::canonical(a, 1000, b, 80, Protocol::kTcp);
  const FlowKey k2 = FlowKey::canonical(a, 1001, b, 80, Protocol::kTcp);
  EXPECT_NE(k1, k2);
}

TEST(FlowKey, ProtocolDistinguishes) {
  const simnet::Ipv4 a(1, 1, 1, 1);
  const simnet::Ipv4 b(2, 2, 2, 2);
  const FlowKey tcp = FlowKey::canonical(a, 53, b, 53, Protocol::kTcp);
  const FlowKey udp = FlowKey::canonical(a, 53, b, 53, Protocol::kUdp);
  EXPECT_NE(tcp, udp);
}

TEST(FlowKey, SelfFlowWithSwappedPortsCanonicalizes) {
  const simnet::Ipv4 a(1, 1, 1, 1);
  const FlowKey k1 = FlowKey::canonical(a, 10, a, 20, Protocol::kUdp);
  const FlowKey k2 = FlowKey::canonical(a, 20, a, 10, Protocol::kUdp);
  EXPECT_EQ(k1, k2);
}

TEST(FlowKey, OrderingByAddressThenPort) {
  const simnet::Ipv4 lo(1, 1, 1, 1);
  const simnet::Ipv4 hi(9, 9, 9, 9);
  const FlowKey k = FlowKey::canonical(hi, 1, lo, 2, Protocol::kTcp);
  EXPECT_EQ(k.ip_a, lo);
  EXPECT_EQ(k.port_a, 2);
  EXPECT_EQ(k.ip_b, hi);
  EXPECT_EQ(k.port_b, 1);
}

TEST(FlowKeyHash, ReasonableSpread) {
  std::set<std::size_t> hashes;
  int collisions = 0;
  for (std::uint32_t i = 0; i < 2000; ++i) {
    const FlowKey k = FlowKey::canonical(simnet::Ipv4(10 + i), static_cast<std::uint16_t>(i),
                                         simnet::Ipv4(1, 2, 3, 4), 80, Protocol::kTcp);
    if (!hashes.insert(FlowKeyHash{}(k)).second) ++collisions;
  }
  EXPECT_LE(collisions, 1);
}

}  // namespace
}  // namespace tradeplot::netflow
