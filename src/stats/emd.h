// Earth Mover's Distance between histogram signatures (Rubner et al., 1998).
//
// EMD is the minimum total cost of turning one distribution into the other
// by moving probability mass, where moving w units across distance d costs
// w*d — the transportation problem (Dantzig, 1951). Two solvers:
//
//  * emd_1d        — exact closed form for one-dimensional signatures with
//                    ground distance |x - y|: the L1 distance between CDFs.
//                    O(n log n); used by the detection pipeline.
//  * emd_transport — exact solver for the general transportation LP via
//                    successive-shortest-path min-cost flow, supporting an
//                    arbitrary ground-distance function. Used to cross-check
//                    emd_1d in tests and for ablation experiments with
//                    non-L1 ground distances.
//
// Both require non-empty signatures with strictly positive total weight and
// normalize each side to unit mass (the paper compares probability
// distributions, so partial-matching EMD is not needed).
#pragma once

#include <functional>

#include "stats/histogram.h"

namespace tradeplot::stats {

[[nodiscard]] double emd_1d(const Signature& a, const Signature& b);

using GroundDistance = std::function<double(double, double)>;

[[nodiscard]] double emd_transport(const Signature& a, const Signature& b,
                                   const GroundDistance& distance);

/// emd_transport with |x - y| ground distance.
[[nodiscard]] double emd_transport(const Signature& a, const Signature& b);

/// Symmetric pairwise EMD matrix for a set of signatures; entry [i*n + j]
/// is the distance between signatures i and j, bit-identical to
/// emd_1d(sigs[i], sigs[j]). All signatures are validated up front (pinned
/// ConfigError messages, thrown before any worker runs), then preprocessed
/// once into a FlatSignatureSet; the upper triangle is computed in
/// cache-blocked tiles by the allocation-free emd_1d_presorted kernel and
/// mirrored. `threads` follows resolve_threads (0 = TRADEPLOT_THREADS env
/// var, else hardware concurrency; 1 = the serial reference loop); every
/// cell is an independent pure computation, so the matrix is bit-identical
/// for every thread count.
[[nodiscard]] std::vector<double> pairwise_emd(const std::vector<Signature>& sigs,
                                               std::size_t threads);

/// pairwise_emd with the default thread count.
[[nodiscard]] std::vector<double> pairwise_emd(const std::vector<Signature>& sigs);

}  // namespace tradeplot::stats
