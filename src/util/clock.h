// Injectable time source for long-running components.
//
// Timeout, backoff, and checkpoint-interval logic must be testable without
// real waiting, so anything in the service layer that asks "what time is it"
// or "sleep a while" goes through a Clock reference instead of calling
// std::chrono directly (the pixie time_system idiom). Production code uses
// Clock::system() — a process-wide monotonic clock — while tests inject a
// SimulatedClock and advance it deterministically.
//
// Times are doubles in seconds on an arbitrary monotonic epoch; they are
// never compared against flow timestamps (which live on the simulation's own
// axis).
#pragma once

#include <condition_variable>
#include <cstddef>
#include <mutex>

namespace tradeplot::util {

class Clock {
 public:
  virtual ~Clock() = default;

  /// Monotonic now, in seconds. Never decreases.
  [[nodiscard]] virtual double now() = 0;

  /// Blocks the calling thread for `seconds` (<= 0 returns immediately).
  virtual void sleep_for(double seconds) = 0;

  /// The process-wide wall clock (std::chrono::steady_clock).
  [[nodiscard]] static Clock& system();
};

/// Real time. now() is steady_clock seconds since the first use.
class SystemClock final : public Clock {
 public:
  [[nodiscard]] double now() override;
  void sleep_for(double seconds) override;
};

/// Deterministic time for tests. Two modes:
///
///  * auto-advance (the default): sleep_for(s) simply moves now() forward by
///    s and returns. Single-threaded code under test runs at "infinite
///    speed", and the test asserts on now() — e.g. that a retry loop slept
///    exactly base + 2*base + 4*base seconds.
///  * manual: sleep_for blocks until another thread calls advance() past the
///    deadline (or wake_all() for shutdown). Multi-threaded components can
///    be stepped through timeouts deterministically.
class SimulatedClock final : public Clock {
 public:
  explicit SimulatedClock(double start = 0.0, bool auto_advance = true);

  [[nodiscard]] double now() override;
  void sleep_for(double seconds) override;

  /// Moves time forward and wakes every blocked sleeper whose deadline
  /// passed. Never moves time backward.
  void advance(double seconds);

  /// Threads currently blocked in sleep_for (manual mode).
  [[nodiscard]] std::size_t sleepers();

  /// Wakes every sleeper regardless of deadline (their sleep_for returns
  /// early). Used to shut down components mid-sleep in tests.
  void wake_all();

 private:
  std::mutex mutex_;
  std::condition_variable cv_;
  double now_;
  bool auto_advance_;
  std::size_t sleepers_ = 0;
  std::size_t wake_epoch_ = 0;
};

}  // namespace tradeplot::util
