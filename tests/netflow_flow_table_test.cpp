#include "netflow/flow_table.h"

#include <gtest/gtest.h>

#include "util/error.h"
#include "util/rng.h"

namespace tradeplot::netflow {
namespace {

const simnet::Ipv4 kClient(128, 2, 0, 50);
const simnet::Ipv4 kServer(93, 184, 216, 34);

PacketEvent packet(double t, simnet::Ipv4 src, std::uint16_t sport, simnet::Ipv4 dst,
                   std::uint16_t dport, Protocol proto, std::uint32_t bytes, TcpFlags flags = {},
                   std::string_view payload = {}) {
  PacketEvent p;
  p.time = t;
  p.src = src;
  p.dst = dst;
  p.sport = sport;
  p.dport = dport;
  p.proto = proto;
  p.payload_bytes = bytes;
  p.tcp = flags;
  p.payload = payload;
  return p;
}

TEST(FlowTable, AssemblesEstablishedTcpConnection) {
  FlowTable table;
  table.add_packet(packet(0.0, kClient, 50000, kServer, 80, Protocol::kTcp, 0, {.syn = true}));
  table.add_packet(
      packet(0.01, kServer, 80, kClient, 50000, Protocol::kTcp, 0, {.syn = true, .ack = true}));
  table.add_packet(packet(0.02, kClient, 50000, kServer, 80, Protocol::kTcp, 500, {.ack = true},
                          "GET / HTTP/1.1"));
  table.add_packet(packet(0.5, kServer, 80, kClient, 50000, Protocol::kTcp, 4000, {.ack = true}));
  const auto flows = table.flush();
  ASSERT_EQ(flows.size(), 1u);
  const FlowRecord& r = flows[0];
  EXPECT_EQ(r.src, kClient);  // initiator
  EXPECT_EQ(r.dst, kServer);
  EXPECT_EQ(r.sport, 50000);
  EXPECT_EQ(r.dport, 80);
  EXPECT_EQ(r.state, FlowState::kEstablished);
  EXPECT_EQ(r.bytes_src, 500u);
  EXPECT_EQ(r.bytes_dst, 4000u);
  EXPECT_EQ(r.pkts_src, 2u);
  EXPECT_EQ(r.pkts_dst, 2u);
  EXPECT_DOUBLE_EQ(r.start_time, 0.0);
  EXPECT_DOUBLE_EQ(r.end_time, 0.5);
  EXPECT_EQ(r.payload_view(), "GET / HTTP/1.1");
}

TEST(FlowTable, UnansweredSynIsAttempted) {
  FlowTable table;
  for (int i = 0; i < 3; ++i) {
    table.add_packet(
        packet(i * 3.0, kClient, 50001, kServer, 445, Protocol::kTcp, 0, {.syn = true}));
  }
  const auto flows = table.flush();
  ASSERT_EQ(flows.size(), 1u);
  EXPECT_EQ(flows[0].state, FlowState::kAttempted);
  EXPECT_EQ(flows[0].pkts_src, 3u);
  EXPECT_EQ(flows[0].pkts_dst, 0u);
}

TEST(FlowTable, RstBeforeEstablishmentIsReset) {
  FlowTable table;
  table.add_packet(packet(0.0, kClient, 50002, kServer, 25, Protocol::kTcp, 0, {.syn = true}));
  table.add_packet(packet(0.05, kServer, 25, kClient, 50002, Protocol::kTcp, 0, {.rst = true}));
  const auto flows = table.flush();
  ASSERT_EQ(flows.size(), 1u);
  EXPECT_EQ(flows[0].state, FlowState::kReset);
  EXPECT_EQ(flows[0].src, kClient);
}

TEST(FlowTable, UdpWithReplyIsEstablished) {
  FlowTable table;
  table.add_packet(packet(0.0, kClient, 53000, kServer, 53, Protocol::kUdp, 60));
  table.add_packet(packet(0.02, kServer, 53, kClient, 53000, Protocol::kUdp, 300));
  const auto flows = table.flush();
  ASSERT_EQ(flows.size(), 1u);
  EXPECT_EQ(flows[0].state, FlowState::kEstablished);
  EXPECT_EQ(flows[0].src, kClient);
}

TEST(FlowTable, UdpWithoutReplyIsAttempted) {
  FlowTable table;
  table.add_packet(packet(0.0, kClient, 53001, kServer, 7871, Protocol::kUdp, 25));
  const auto flows = table.flush();
  ASSERT_EQ(flows.size(), 1u);
  EXPECT_EQ(flows[0].state, FlowState::kAttempted);
}

TEST(FlowTable, IdleTimeoutSplitsFlows) {
  FlowTable table(FlowTableConfig{.idle_timeout = 10.0});
  table.add_packet(packet(0.0, kClient, 50003, kServer, 80, Protocol::kUdp, 100));
  table.add_packet(packet(1.0, kServer, 80, kClient, 50003, Protocol::kUdp, 100));
  // Long silence, then the "same" 5-tuple reappears: a new flow.
  table.add_packet(packet(60.0, kClient, 50003, kServer, 80, Protocol::kUdp, 100));
  const auto flows = table.flush();
  ASSERT_EQ(flows.size(), 2u);
  EXPECT_EQ(flows[0].state, FlowState::kEstablished);
  EXPECT_EQ(flows[1].state, FlowState::kAttempted);
}

TEST(FlowTable, ActiveTimeoutSplitsLongFlows) {
  FlowTable table(FlowTableConfig{.idle_timeout = 1000.0, .active_timeout = 30.0});
  for (int i = 0; i <= 8; ++i) {
    table.add_packet(
        packet(i * 10.0, kClient, 50004, kServer, 80, Protocol::kUdp, 10));
  }
  const auto flows = table.flush();
  EXPECT_GE(flows.size(), 2u);
}

TEST(FlowTable, RejectsOutOfOrderPackets) {
  FlowTable table;
  table.add_packet(packet(5.0, kClient, 1, kServer, 2, Protocol::kUdp, 1));
  EXPECT_THROW(table.add_packet(packet(4.0, kClient, 1, kServer, 2, Protocol::kUdp, 1)),
               util::Error);
}

TEST(FlowTable, RejectsNonPositiveIdleTimeout) {
  EXPECT_THROW(FlowTable(FlowTableConfig{.idle_timeout = 0.0}), util::ConfigError);
}

TEST(FlowTable, FlushReturnsFlowsSortedByStart) {
  FlowTable table;
  table.add_packet(packet(0.0, kClient, 1000, kServer, 80, Protocol::kUdp, 1));
  table.add_packet(packet(1.0, kClient, 1001, kServer, 80, Protocol::kUdp, 1));
  table.add_packet(packet(2.0, kClient, 1002, kServer, 80, Protocol::kUdp, 1));
  const auto flows = table.flush();
  ASSERT_EQ(flows.size(), 3u);
  EXPECT_LT(flows[0].start_time, flows[1].start_time);
  EXPECT_LT(flows[1].start_time, flows[2].start_time);
  EXPECT_EQ(table.open_flows(), 0u);
}

TEST(FlowTable, FinFinClosesFlow) {
  FlowTable table;
  table.add_packet(packet(0.0, kClient, 50005, kServer, 80, Protocol::kTcp, 0, {.syn = true}));
  table.add_packet(
      packet(0.01, kServer, 80, kClient, 50005, Protocol::kTcp, 0, {.syn = true, .ack = true}));
  table.add_packet(packet(0.02, kClient, 50005, kServer, 80, Protocol::kTcp, 100, {.ack = true}));
  table.add_packet(
      packet(0.5, kClient, 50005, kServer, 80, Protocol::kTcp, 0, {.ack = true, .fin = true}));
  table.add_packet(
      packet(0.6, kServer, 80, kClient, 50005, Protocol::kTcp, 0, {.ack = true, .fin = true}));
  EXPECT_EQ(table.take_completed().size(), 1u);
  EXPECT_EQ(table.open_flows(), 0u);
}

// Property: packets and bytes are conserved through assembly, whatever the
// interleaving of concurrent flows.
class FlowTableConservation : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FlowTableConservation, PacketsAndBytesConserved) {
  util::Pcg32 rng(GetParam());
  FlowTable table(FlowTableConfig{.idle_timeout = 30.0});
  double t = 0.0;
  std::uint64_t total_packets = 0;
  std::uint64_t total_bytes = 0;
  for (int i = 0; i < 5000; ++i) {
    t += rng.exponential(0.05);
    const auto bytes = static_cast<std::uint32_t>(rng.uniform_int(0, 1500));
    const auto sport = static_cast<std::uint16_t>(rng.uniform_int(1024, 1034));
    const auto dport = static_cast<std::uint16_t>(rng.uniform_int(80, 82));
    const bool reverse = rng.chance(0.4);
    auto p = packet(t, reverse ? kServer : kClient, reverse ? dport : sport,
                    reverse ? kClient : kServer, reverse ? sport : dport, Protocol::kUdp, bytes);
    table.add_packet(p);
    ++total_packets;
    total_bytes += bytes;
  }
  const auto flows = table.flush();
  std::uint64_t flow_packets = 0;
  std::uint64_t flow_bytes = 0;
  for (const FlowRecord& r : flows) {
    flow_packets += r.total_pkts();
    flow_bytes += r.total_bytes();
  }
  EXPECT_EQ(flow_packets, total_packets);
  EXPECT_EQ(flow_bytes, total_bytes);
}

INSTANTIATE_TEST_SUITE_P(Seeds, FlowTableConservation, ::testing::Values(1, 2, 3, 4, 5));

}  // namespace
}  // namespace tradeplot::netflow
