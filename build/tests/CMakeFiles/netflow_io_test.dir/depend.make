# Empty dependencies file for netflow_io_test.
# This may be replaced when dependencies are built.
