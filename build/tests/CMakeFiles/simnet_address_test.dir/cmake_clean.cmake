file(REMOVE_RECURSE
  "CMakeFiles/simnet_address_test.dir/simnet_address_test.cpp.o"
  "CMakeFiles/simnet_address_test.dir/simnet_address_test.cpp.o.d"
  "simnet_address_test"
  "simnet_address_test.pdb"
  "simnet_address_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/simnet_address_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
