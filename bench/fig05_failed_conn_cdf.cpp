// Figure 5: cumulative distribution of the percentage of failed connections
// per host in each dataset over one day, plus the data-reduction threshold.
//
// Paper shape: clear separation between CMU\Trader and Trader curves;
// BitTorrent "web-only" Traders sit below 10%; almost all Nugache bots above
// 65%; the reduction threshold (median with Plotters overlaid) lands around
// 25%.
#include "bench/bench_util.h"
#include "detect/features.h"
#include "detect/tests.h"
#include "eval/day.h"

using namespace tradeplot;

int main() {
  benchx::header("Figure 5 - CDF of failed-connection percentage per host (one day)");

  const eval::EvalConfig cfg = benchx::paper_eval_config();
  const netflow::TraceSet storm = botnet::generate_storm_trace(cfg.honeynet);
  const netflow::TraceSet nugache = botnet::generate_nugache_trace(cfg.honeynet);
  const netflow::TraceSet campus = trace::generate_campus_trace(cfg.campus);

  detect::FeatureExtractorConfig fx;
  fx.is_internal = detect::default_internal_predicate;
  const auto campus_f = detect::extract_features(campus, fx);
  const auto storm_f = detect::extract_features(storm, fx);
  const auto nugache_f = detect::extract_features(nugache, fx);

  const auto failed = [](const detect::HostFeatures& f) { return f.failed_rate(); };

  // Per the paper: only hosts that initiated successful connections count.
  std::vector<double> cmu_background, traders;
  for (const auto& [host, f] : campus_f) {
    if (!f.initiated_success()) continue;
    if (campus.class_of(host) == netflow::HostClass::kTrader) {
      traders.push_back(failed(f));
    } else {
      cmu_background.push_back(failed(f));
    }
  }

  const std::vector<double> grid = {0.05, 0.1, 0.2, 0.3, 0.4, 0.5, 0.65, 0.8, 0.95};
  benchx::print_grid_header("failed frac", grid);
  benchx::print_cdf_row("CMU\\Trader", cmu_background, grid);
  benchx::print_cdf_row("Trader", traders, grid);
  benchx::print_cdf_row(
      "Storm",
      benchx::values_of_kind(storm, storm_f, netflow::HostKind::kStorm, failed), grid);
  benchx::print_cdf_row(
      "Nugache",
      benchx::values_of_kind(nugache, nugache_f, netflow::HostKind::kNugache, failed), grid);

  // The data-reduction threshold on an overlaid day (median failed rate).
  const eval::DayData day = eval::make_day(cfg.campus, storm, nugache, 0);
  const detect::HostSet input = detect::all_hosts(day.features);
  const double threshold = detect::data_reduction_threshold(day.features, input);
  std::printf("\n  data-reduction threshold (median, Plotters overlaid): %.2f%%\n",
              threshold * 100.0);

  benchx::paper_reference(
      "Fig. 5: 'There is a clear distinction between the curves for the\n"
      "CMU\\Trader and Trader datasets'; Traders with <10% failures are\n"
      "tracker-web-only BitTorrent users; 'almost all Nugache Plotters\n"
      "[have] more than 65% failed connections'; the example threshold was\n"
      "~25% (25.74% median). Expect: Trader curve right of CMU\\Trader,\n"
      "Nugache CDF near 0 until ~0.65, and a threshold well above the\n"
      "typical web client but below the P2P population (one-digit to low\n"
      "tens of percent; the absolute value depends on the campus mix).");
  return 0;
}
