// End-to-end tests for the monitor daemon (src/svc/daemon.h): config
// parsing, tenant queue accounting, the batch-oracle verdict guarantee,
// crash-image restart resume, payload quarantine, timeouts, reload, and the
// HTTP sidecar endpoints.
#include "svc/daemon.h"

#include <gtest/gtest.h>
#include <sys/stat.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "detect/features.h"
#include "detect/streaming.h"
#include "netflow/io.h"
#include "netflow/trace_reader.h"
#include "netflow/trace_set.h"
#include "svc/config.h"
#include "svc/frame.h"
#include "svc/net.h"
#include "svc/sender.h"
#include "util/error.h"

namespace tradeplot::svc {
namespace {

std::string make_temp_dir() {
  char tmpl[] = "/tmp/tp_daemon_XXXXXX";
  const char* dir = mkdtemp(tmpl);
  EXPECT_NE(dir, nullptr);
  return dir;
}

/// A trace whose flows span several 60 s detection windows, with internal
/// hosts (128.2/16) fanning out enough that windows carry real feature work.
netflow::TraceSet make_trace(std::size_t flows, double seconds) {
  netflow::TraceSet trace;
  trace.set_window(0.0, seconds);
  for (std::size_t i = 0; i < flows; ++i) {
    netflow::FlowRecord r;
    r.src = simnet::Ipv4(0x80020001u + static_cast<std::uint32_t>(i % 40));
    r.dst = simnet::Ipv4(0x0a000001u + static_cast<std::uint32_t>(i % 997));
    r.sport = static_cast<std::uint16_t>(1024 + i % 50000);
    r.dport = static_cast<std::uint16_t>(i % 3 == 0 ? 6881 : 80);
    r.proto = netflow::Protocol::kTcp;
    r.start_time = seconds * static_cast<double>(i) / static_cast<double>(flows);
    r.end_time = r.start_time + 0.5;
    r.pkts_src = 3 + i % 11;
    r.pkts_dst = 2 + i % 7;
    r.bytes_src = 120 + i % 1400;
    r.bytes_dst = 90 + i % 900;
    r.state = i % 5 == 0 ? netflow::FlowState::kAttempted : netflow::FlowState::kEstablished;
    trace.add_flow(r);
  }
  return trace;
}

std::string write_trace_file(const std::string& dir, const netflow::TraceSet& trace) {
  const std::string path = dir + "/trace.bin";
  std::ofstream out(path, std::ios::binary);
  netflow::write_binary(out, trace);
  return path;
}

/// Single-shot batch run: the verdict stream the daemon must reproduce.
std::vector<std::string> batch_oracle(const std::string& trace_path,
                                      const TenantParams& params) {
  detect::StreamingConfig cfg;
  cfg.window = params.window;
  cfg.is_internal = detect::default_internal_predicate;
  cfg.timing_budget = static_cast<std::size_t>(params.timing_budget);
  std::vector<std::string> lines;
  detect::StreamingDetector det(
      cfg, [&](const detect::WindowVerdict& v) { lines.push_back(format_verdict_line(v)); });
  netflow::TraceReader reader(trace_path, netflow::ErrorPolicy::strict());
  for (;;) {
    netflow::FlowBatch batch;
    if (reader.next_batch(batch) == 0) break;
    det.ingest(batch);
  }
  det.flush();
  return lines;
}

/// Reads a tenant verdict log and deduplicates by window_index, last entry
/// wins — the documented reader discipline for crash-resumed logs.
std::vector<std::string> read_deduped_log(const std::string& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in.is_open()) << path;
  std::map<std::size_t, std::string> last;  // ordered by window index
  std::string line;
  while (std::getline(in, line)) {
    std::size_t idx = 0;
    EXPECT_EQ(std::sscanf(line.c_str(), "{\"window_index\":%zu", &idx), 1) << line;
    last[idx] = line;
  }
  std::vector<std::string> out;
  for (auto& [idx, l] : last) out.push_back(std::move(l));
  return out;
}

void copy_file(const std::string& src, const std::string& dst) {
  std::ifstream in(src, std::ios::binary);
  ASSERT_TRUE(in.is_open()) << src;
  std::ofstream out(dst, std::ios::binary);
  out << in.rdbuf();
  ASSERT_TRUE(out.good()) << dst;
}

netflow::FlowBatch batch_of(std::size_t rows) {
  const netflow::TraceSet trace = make_trace(rows, 10.0);
  netflow::FlowBatch batch(rows);
  for (const netflow::FlowRecord& r : trace.flows()) batch.push_back(r);
  return batch;
}

std::string http_get(std::uint16_t port, const std::string& path) {
  Fd fd = connect_to(Endpoint::parse("tcp:127.0.0.1:" + std::to_string(port)));
  const std::string req = "GET " + path + " HTTP/1.0\r\n\r\n";
  EXPECT_TRUE(send_all(fd.get(), req.data(), req.size()));
  std::string response;
  char buf[4096];
  for (;;) {
    if (!wait_readable(fd.get(), 2000)) break;
    const std::size_t got = recv_some(fd.get(), buf, sizeof(buf));
    if (got == 0) break;
    response.append(buf, got);
  }
  return response;
}

TEST(DaemonConfig, ParsesDaemonAndTenantSections) {
  std::istringstream in(
      "# monitor config\n"
      "ingest = tcp:127.0.0.1:0\n"
      "http = tcp:127.0.0.1:0\n"
      "state_dir = /tmp/state\n"
      "read_timeout = 5\n"
      "idle_timeout = 60\n"
      "metrics = true\n"
      "checkpoint_interval = 30\n"
      "\n"
      "[tenant campus-a]\n"
      "window = 3600\n"
      "checkpoint_every = 5000\n"
      "queue_capacity = 1000\n"
      "overflow = shed\n"
      "policy = stop-after=10\n"
      "\n"
      "[tenant campus-b]\n"
      "policy = strict\n");
  const DaemonConfig cfg = DaemonConfig::parse(in);
  EXPECT_EQ(cfg.ingest, "tcp:127.0.0.1:0");
  EXPECT_EQ(cfg.state_dir, "/tmp/state");
  EXPECT_DOUBLE_EQ(cfg.read_timeout, 5.0);
  EXPECT_DOUBLE_EQ(cfg.idle_timeout, 60.0);
  EXPECT_TRUE(cfg.metrics);
  EXPECT_DOUBLE_EQ(cfg.checkpoint_interval, 30.0);
  ASSERT_EQ(cfg.tenants.size(), 2u);
  const TenantParams* a = cfg.find_tenant("campus-a");
  ASSERT_NE(a, nullptr);
  EXPECT_DOUBLE_EQ(a->window, 3600.0);
  EXPECT_EQ(a->checkpoint_every, 5000u);
  EXPECT_EQ(a->queue_capacity, 1000u);
  EXPECT_EQ(a->overflow, Overflow::kShed);
  const TenantParams* b = cfg.find_tenant("campus-b");
  ASSERT_NE(b, nullptr);
  EXPECT_EQ(b->overflow, Overflow::kBlock);  // default
}

TEST(DaemonConfig, RejectsTyposAndIncompleteConfigs) {
  const auto parse = [](const std::string& text) {
    std::istringstream in(text);
    return DaemonConfig::parse(in);
  };
  const std::string base = "ingest = tcp:127.0.0.1:0\nstate_dir = /tmp/s\n[tenant t]\n";
  EXPECT_THROW((void)parse(base + "windw = 60\n"), util::ConfigError);  // typo
  EXPECT_THROW((void)parse("state_dir = /tmp/s\n[tenant t]\n"), util::ConfigError);
  EXPECT_THROW((void)parse("ingest = tcp:127.0.0.1:0\nstate_dir = /tmp/s\n"),
               util::ConfigError);  // no tenant
  EXPECT_THROW((void)parse(base + "[tenant t]\n"), util::ConfigError);  // duplicate
  EXPECT_THROW((void)parse(base + "overflow = drop\n"), util::ConfigError);
  (void)parse(base);  // the base itself is valid
}

TEST(TenantQueue, ShedPolicyDropsOversizeBatchDeterministically) {
  const std::string dir = make_temp_dir();
  TenantParams params;
  params.name = "shedder";
  params.window = 60.0;
  params.queue_capacity = 100;
  params.overflow = Overflow::kShed;
  Tenant tenant(params, dir, util::Clock::system());
  tenant.start();

  // 500 rows can never fit a 100-row queue: shed in full, no matter how
  // fast the worker drains — the assertion is scheduling-independent.
  const Tenant::Offer big = tenant.offer(batch_of(500));
  EXPECT_EQ(big.shed, 500u);
  EXPECT_EQ(big.enqueued, 0u);

  const Tenant::Offer small = tenant.offer(batch_of(50));
  EXPECT_EQ(small.enqueued, 50u);
  tenant.add_quarantined(7);

  const Tenant::Stats s = tenant.flush_barrier();
  EXPECT_EQ(s.accepted, 500u + 50u + 7u);
  EXPECT_EQ(s.ingested, 50u);
  EXPECT_EQ(s.shed, 500u);
  EXPECT_EQ(s.quarantined, 7u);
  // The books balance: every accepted row is ingested, shed, or quarantined.
  EXPECT_EQ(s.accepted, s.ingested + s.shed + s.quarantined);
  tenant.stop();
}

TEST(TenantQueue, BlockPolicyAdmitsOversizeBatchInsteadOfDeadlocking) {
  const std::string dir = make_temp_dir();
  TenantParams params;
  params.name = "blocker";
  params.window = 60.0;
  params.queue_capacity = 10;  // smaller than the batch
  params.overflow = Overflow::kBlock;
  Tenant tenant(params, dir, util::Clock::system());
  tenant.start();
  const Tenant::Offer offer = tenant.offer(batch_of(500));
  EXPECT_EQ(offer.enqueued, 500u);
  const Tenant::Stats s = tenant.flush_barrier();
  EXPECT_EQ(s.ingested, 500u);
  EXPECT_EQ(s.shed, 0u);
  tenant.stop();
}

DaemonConfig base_config(const std::string& dir, const std::string& tenant_name,
                         double window = 60.0) {
  DaemonConfig cfg;
  cfg.ingest = "unix:" + dir + "/ingest.sock";
  cfg.state_dir = dir + "/state";
  TenantParams t;
  t.name = tenant_name;
  t.window = window;
  t.checkpoint_every = 777;  // deliberately not a multiple of any frame size
  cfg.tenants.push_back(t);
  return cfg;
}

SendReport stream_to(const std::string& endpoint, const std::string& tenant,
                     const std::string& trace, std::size_t rows_per_frame = 100) {
  SenderOptions opts;
  opts.endpoint = endpoint;
  opts.tenant = tenant;
  opts.rows_per_frame = rows_per_frame;
  FrameSender sender(opts);
  return sender.stream(trace);
}

TEST(Daemon, VerdictsMatchTheBatchOracleAcrossTenants) {
  const std::string dir = make_temp_dir();
  DaemonConfig cfg = base_config(dir, "campus-a");
  TenantParams b = cfg.tenants[0];
  b.name = "campus-b";
  b.window = 45.0;  // different windowing: universes must stay independent
  cfg.tenants.push_back(b);

  const netflow::TraceSet trace = make_trace(5000, 300.0);
  const std::string trace_path = write_trace_file(dir, trace);

  Daemon daemon(cfg);
  daemon.start();
  const SendReport ra = stream_to(cfg.ingest, "campus-a", trace_path);
  const SendReport rb = stream_to(cfg.ingest, "campus-b", trace_path, 333);
  EXPECT_EQ(ra.accepted, 5000u);
  EXPECT_EQ(ra.ingested, 5000u);
  EXPECT_EQ(ra.shed, 0u);
  EXPECT_EQ(ra.quarantined, 0u);
  EXPECT_EQ(rb.ingested, 5000u);
  daemon.stop();  // graceful: final checkpoint, partial-window flush

  for (const TenantParams& params : cfg.tenants) {
    const std::vector<std::string> expected = batch_oracle(trace_path, params);
    const std::vector<std::string> got =
        read_deduped_log(cfg.state_dir + "/" + params.name + ".verdicts.jsonl");
    ASSERT_EQ(got.size(), expected.size()) << params.name;
    for (std::size_t i = 0; i < expected.size(); ++i)
      EXPECT_EQ(got[i], expected[i]) << params.name << " window " << i;
  }
}

TEST(Daemon, CrashImageRestartResumesAtNonFrameAlignedCheckpoint) {
  const std::string dir1 = make_temp_dir();
  const std::string dir2 = make_temp_dir();
  const netflow::TraceSet trace = make_trace(3000, 300.0);
  const std::string trace_path = write_trace_file(dir1, trace);

  // Run 1 ingests everything; checkpoints land at rows 777/1554/2331.
  DaemonConfig cfg1 = base_config(dir1, "campus");
  {
    Daemon daemon(cfg1);
    daemon.start();
    const SendReport r = stream_to(cfg1.ingest, "campus", trace_path);
    ASSERT_EQ(r.ingested, 3000u);

    // Snapshot the state dir NOW — after the flush barrier, before the
    // graceful stop. This is byte-for-byte what a kill -9 leaves behind:
    // the row-2331 checkpoint plus the verdict-log prefix, no final
    // checkpoint, no partial-window flush.
    DaemonConfig cfg2 = base_config(dir2, "campus");
    ASSERT_EQ(::mkdir(cfg2.state_dir.c_str(), 0755), 0);
    copy_file(cfg1.state_dir + "/campus.ckpt", cfg2.state_dir + "/campus.ckpt");
    copy_file(cfg1.state_dir + "/campus.verdicts.jsonl",
              cfg2.state_dir + "/campus.verdicts.jsonl");
    daemon.stop();

    // Run 2 restores the crash image: the HelloAck cursor must be exactly
    // the checkpoint position, so the sender re-sends rows 2331..2999 —
    // not frame-aligned (frames carry 100 rows).
    Daemon daemon2(cfg2);
    daemon2.start();
    EXPECT_EQ(daemon2.find_tenant("campus")->stats().ingested, 2331u);
    const SendReport resumed = stream_to(cfg2.ingest, "campus", trace_path);
    EXPECT_EQ(resumed.rows_sent, 3000u - 2331u);
    EXPECT_EQ(resumed.ingested, 3000u);
    daemon2.stop();

    // Deduped by window_index (last wins), run 2's log equals the oracle:
    // the crash and resume are invisible in the verdict stream.
    const std::vector<std::string> expected = batch_oracle(trace_path, cfg2.tenants[0]);
    const std::vector<std::string> got =
        read_deduped_log(cfg2.state_dir + "/campus.verdicts.jsonl");
    ASSERT_EQ(got.size(), expected.size());
    for (std::size_t i = 0; i < expected.size(); ++i) EXPECT_EQ(got[i], expected[i]);
  }
}

TEST(Daemon, MalformedPayloadRowsAreQuarantinedAndAccounted) {
  const std::string dir = make_temp_dir();
  const DaemonConfig cfg = base_config(dir, "campus");  // default policy: skip
  Daemon daemon(cfg);
  daemon.start();

  // A CSV payload with three garbage rows: the tenant's ErrorPolicy must
  // quarantine them and the books must still balance.
  std::ostringstream csv;
  netflow::write_csv(csv, make_trace(20, 10.0));
  std::string payload = csv.str();
  payload += "this,is,not,a,flow\ngarbage\n1,2,3\n";

  Fd fd = connect_to(Endpoint::parse(cfg.ingest));
  const auto send = [&](FrameType type, std::string_view body) {
    const std::vector<char> wire = encode_frame(type, body);
    ASSERT_TRUE(send_all(fd.get(), wire.data(), wire.size()));
  };
  const auto recv = [&](FrameParser& parser, Frame& out) {
    char buf[8192];
    while (!parser.next(out)) {
      ASSERT_TRUE(wait_readable(fd.get(), 5000));
      const std::size_t got = recv_some(fd.get(), buf, sizeof(buf));
      ASSERT_GT(got, 0u);
      parser.append(buf, got);
    }
  };

  FrameParser parser;
  Frame reply;
  send(FrameType::kHello, "campus");
  recv(parser, reply);
  ASSERT_EQ(reply.type, FrameType::kHelloAck);
  send(FrameType::kFlows, payload);
  send(FrameType::kFlush, {});
  recv(parser, reply);
  ASSERT_EQ(reply.type, FrameType::kFlushAck);
  const char* p = reply.payload.data();
  EXPECT_EQ(read_u64(p), 23u);       // accepted: 20 good + 3 quarantined
  EXPECT_EQ(read_u64(p + 8), 20u);   // ingested
  EXPECT_EQ(read_u64(p + 16), 0u);   // shed
  EXPECT_EQ(read_u64(p + 24), 3u);   // quarantined
  send(FrameType::kBye, {});
  daemon.stop();
}

TEST(Daemon, UnknownTenantIsRejectedWithAnErrorFrame) {
  const std::string dir = make_temp_dir();
  const DaemonConfig cfg = base_config(dir, "campus");
  Daemon daemon(cfg);
  daemon.start();

  Fd fd = connect_to(Endpoint::parse(cfg.ingest));
  const std::vector<char> hello = encode_frame(FrameType::kHello, "nope");
  ASSERT_TRUE(send_all(fd.get(), hello.data(), hello.size()));
  FrameParser parser;
  Frame reply;
  char buf[4096];
  bool got_reply = false;
  while (!got_reply) {
    ASSERT_TRUE(wait_readable(fd.get(), 5000));
    const std::size_t got = recv_some(fd.get(), buf, sizeof(buf));
    if (got == 0) break;
    parser.append(buf, got);
    got_reply = parser.next(reply);
  }
  ASSERT_TRUE(got_reply);
  EXPECT_EQ(reply.type, FrameType::kError);
  EXPECT_NE(std::string(reply.payload_view()).find("unknown tenant"), std::string::npos);
  daemon.stop();
}

TEST(Daemon, SilentConnectionsAreDisconnectedByTimeouts) {
  const std::string dir = make_temp_dir();
  DaemonConfig cfg = base_config(dir, "campus");
  cfg.read_timeout = 0.2;
  cfg.idle_timeout = 0.2;
  Daemon daemon(cfg);
  daemon.start();

  // A half-frame then silence: the read timeout fires and the daemon sends
  // kError before closing. The client sees the error, then EOF.
  Fd fd = connect_to(Endpoint::parse(cfg.ingest));
  const std::vector<char> frame = encode_frame(FrameType::kHello, "campus");
  ASSERT_TRUE(send_all(fd.get(), frame.data(), frame.size() - 4));  // truncated
  FrameParser parser;
  Frame reply;
  char buf[4096];
  bool got_error = false, got_eof = false;
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (!got_eof && std::chrono::steady_clock::now() < deadline) {
    if (!wait_readable(fd.get(), 100)) continue;
    const std::size_t got = recv_some(fd.get(), buf, sizeof(buf));
    if (got == 0) {
      got_eof = true;
      break;
    }
    parser.append(buf, got);
    if (parser.next(reply) && reply.type == FrameType::kError) got_error = true;
  }
  EXPECT_TRUE(got_error);
  EXPECT_TRUE(got_eof);
  daemon.stop();
}

TEST(Daemon, ReloadUpdatesKnobsAndAddsTenants) {
  const std::string dir = make_temp_dir();
  DaemonConfig cfg = base_config(dir, "campus");
  Daemon daemon(cfg);
  daemon.start();

  DaemonConfig fresh = cfg;
  fresh.tenants[0].queue_capacity = 9999;       // reloadable
  fresh.tenants[0].window = 120.0;              // fixed: must be reported, not applied
  TenantParams extra;
  extra.name = "new-campus";
  extra.window = 60.0;
  fresh.tenants.push_back(extra);

  const std::string summary = daemon.reload(fresh);
  EXPECT_NE(summary.find("1 added"), std::string::npos) << summary;
  EXPECT_NE(summary.find("kept prior window"), std::string::npos) << summary;
  Tenant* added = daemon.find_tenant("new-campus");
  ASSERT_NE(added, nullptr);
  EXPECT_TRUE(added->ready());
  // The fixed parameter kept its original value.
  EXPECT_DOUBLE_EQ(daemon.find_tenant("campus")->params().window, 60.0);
  EXPECT_EQ(daemon.find_tenant("campus")->params().queue_capacity, 9999u);
  daemon.stop();
}

TEST(Daemon, CorruptCheckpointIsQuarantinedAndServiceStartsFresh) {
  const std::string dir = make_temp_dir();
  const DaemonConfig cfg = base_config(dir, "campus");
  ASSERT_EQ(::mkdir(cfg.state_dir.c_str(), 0755), 0);
  {
    std::ofstream bad(cfg.state_dir + "/campus.ckpt", std::ios::binary);
    bad << "this is not a checkpoint";
  }

  Daemon daemon(cfg);
  daemon.start();
  Tenant* tenant = daemon.find_tenant("campus");
  ASSERT_NE(tenant, nullptr);
  EXPECT_EQ(tenant->stats().restore_failures, 1u);
  EXPECT_EQ(tenant->stats().ingested, 0u);  // fresh start
  EXPECT_TRUE(std::ifstream(cfg.state_dir + "/campus.ckpt.corrupt").is_open());

  // And the fresh universe still produces oracle-exact verdicts.
  const netflow::TraceSet trace = make_trace(1500, 180.0);
  const std::string trace_path = write_trace_file(dir, trace);
  const SendReport r = stream_to(cfg.ingest, "campus", trace_path);
  EXPECT_EQ(r.ingested, 1500u);
  daemon.stop();
  const std::vector<std::string> expected = batch_oracle(trace_path, cfg.tenants[0]);
  EXPECT_EQ(read_deduped_log(cfg.state_dir + "/campus.verdicts.jsonl"), expected);
}

TEST(Daemon, HttpSidecarServesHealthReadinessAndTenants) {
  const std::string dir = make_temp_dir();
  DaemonConfig cfg = base_config(dir, "campus");
  cfg.http = "tcp:127.0.0.1:0";
  Daemon daemon(cfg);
  daemon.start();
  ASSERT_NE(daemon.http_port(), 0);

  EXPECT_NE(http_get(daemon.http_port(), "/healthz").find("200 OK"), std::string::npos);
  EXPECT_NE(http_get(daemon.http_port(), "/readyz").find("ready"), std::string::npos);
  const std::string tenants = http_get(daemon.http_port(), "/tenants");
  EXPECT_NE(tenants.find("\"name\":\"campus\""), std::string::npos);
  EXPECT_NE(tenants.find("\"ready\":true"), std::string::npos);
  // Metrics are off by default: the endpoint says so instead of lying with
  // an empty exposition.
  EXPECT_NE(http_get(daemon.http_port(), "/metrics").find("503"), std::string::npos);
  EXPECT_NE(http_get(daemon.http_port(), "/nope").find("404"), std::string::npos);
  daemon.stop();
}

}  // namespace
}  // namespace tradeplot::svc
