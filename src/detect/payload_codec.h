// Little-endian raw-byte payload codec shared by the streaming-detector
// checkpoint (streaming.cpp) and the θ_hm signature cache (hm_cache.cpp).
//
// The encoded payload is framed, versioned, and CRC-checked by the
// checkpoint writer; these helpers only serialize trivially-copyable scalars
// and double vectors into/out of a contiguous buffer, throwing
// util::ParseError on any read past the end so a truncated payload can never
// be half-applied.
#pragma once

#include <cstring>
#include <string>
#include <type_traits>
#include <vector>

#include "util/error.h"

namespace tradeplot::detect {

class PayloadWriter {
 public:
  template <typename T>
  void put(T value) {
    static_assert(std::is_trivially_copyable_v<T>);
    const char* bytes = reinterpret_cast<const char*>(&value);
    buf_.append(bytes, sizeof(value));
  }

  void put_times(const std::vector<double>& v) {
    put(static_cast<std::uint64_t>(v.size()));
    if (!v.empty())
      buf_.append(reinterpret_cast<const char*>(v.data()), v.size() * sizeof(double));
  }

  [[nodiscard]] const std::string& bytes() const { return buf_; }

 private:
  std::string buf_;
};

class PayloadReader {
 public:
  explicit PayloadReader(const std::string& buf) : buf_(buf) {}

  template <typename T>
  T take() {
    static_assert(std::is_trivially_copyable_v<T>);
    T value;
    if (pos_ + sizeof(value) > buf_.size())
      throw util::ParseError("checkpoint: truncated payload");
    std::memcpy(&value, buf_.data() + pos_, sizeof(value));
    pos_ += sizeof(value);
    return value;
  }

  std::vector<double> take_times() {
    const auto n = take<std::uint64_t>();
    if (pos_ + n * sizeof(double) > buf_.size())
      throw util::ParseError("checkpoint: truncated payload");
    std::vector<double> v(static_cast<std::size_t>(n));
    if (n != 0) std::memcpy(v.data(), buf_.data() + pos_, v.size() * sizeof(double));
    pos_ += v.size() * sizeof(double);
    return v;
  }

  [[nodiscard]] bool exhausted() const { return pos_ == buf_.size(); }

 private:
  const std::string& buf_;
  std::size_t pos_ = 0;
};

}  // namespace tradeplot::detect
