#include "detect/human_machine.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>
#include <map>

#include "util/error.h"
#include "util/rng.h"

namespace tradeplot::detect {
namespace {

simnet::Ipv4 host(std::uint8_t last_octet) { return simnet::Ipv4(128, 2, 0, last_octet); }

HostFeatures with_interstitials(std::uint8_t last_octet, std::vector<double> gaps) {
  HostFeatures f;
  f.host = host(last_octet);
  f.flows_initiated = gaps.size() + 1;
  f.interstitials = std::move(gaps);
  return f;
}

// `count` samples at `period` with +-jitter noise: a machine timer.
std::vector<double> machine_gaps(util::Pcg32& rng, double period, double jitter,
                                 std::size_t count) {
  std::vector<double> gaps(count);
  for (double& g : gaps) g = period + rng.uniform(-jitter, jitter);
  return gaps;
}

// Heavy-tailed human gaps with a per-host scale.
std::vector<double> human_gaps(util::Pcg32& rng, double mu, std::size_t count) {
  std::vector<double> gaps(count);
  for (double& g : gaps) g = rng.lognormal(mu, 1.0);
  return gaps;
}

struct Population {
  FeatureMap features;
  HostSet input;

  void add(HostFeatures f) {
    input.push_back(f.host);
    features.emplace(f.host, std::move(f));
  }
};

Population bots_and_humans() {
  util::Pcg32 rng(1);
  Population pop;
  // Five "bots" sharing a 30 s timer.
  for (std::uint8_t b = 1; b <= 5; ++b) {
    pop.add(with_interstitials(b, machine_gaps(rng, 30.0, 0.5, 400)));
  }
  // Twelve humans at assorted scales.
  for (std::uint8_t h = 20; h < 32; ++h) {
    pop.add(with_interstitials(h, human_gaps(rng, 5.0 + (h % 5) * 0.4, 300)));
  }
  return pop;
}

TEST(HumanMachineTest, BotsClusterTogetherAndSurvive) {
  Population pop = bots_and_humans();
  const HumanMachineResult result = human_machine_test(pop.features, pop.input, {});
  // All five machine-driven hosts flagged...
  for (std::uint8_t b = 1; b <= 5; ++b) {
    EXPECT_TRUE(std::binary_search(result.flagged.begin(), result.flagged.end(), host(b)))
        << "bot " << int(b);
  }
  // ...and they sit in one pure, tight cluster.
  bool found_pure_bot_cluster = false;
  for (const HostCluster& cluster : result.clusters) {
    std::size_t bots = 0;
    for (const simnet::Ipv4 member : cluster.members) {
      if (member <= host(5)) ++bots;
    }
    if (bots == 5 && cluster.members.size() == 5) {
      found_pure_bot_cluster = true;
      EXPECT_TRUE(cluster.kept);
    }
  }
  EXPECT_TRUE(found_pure_bot_cluster);
}

TEST(HumanMachineTest, MinSamplesSkipsQuietHosts) {
  util::Pcg32 rng(2);
  Population pop = bots_and_humans();
  pop.add(with_interstitials(99, {1.0, 2.0}));  // 2 samples only
  HumanMachineConfig config;
  config.min_samples = 10;
  const HumanMachineResult result = human_machine_test(pop.features, pop.input, config);
  EXPECT_TRUE(std::binary_search(result.skipped.begin(), result.skipped.end(), host(99)));
  EXPECT_FALSE(std::binary_search(result.flagged.begin(), result.flagged.end(), host(99)));
}

TEST(HumanMachineTest, TooFewEligibleHostsReturnsEmpty) {
  util::Pcg32 rng(3);
  Population pop;
  pop.add(with_interstitials(1, machine_gaps(rng, 10, 0.1, 100)));
  const HumanMachineResult result = human_machine_test(pop.features, pop.input, {});
  EXPECT_TRUE(result.flagged.empty());
  EXPECT_TRUE(result.clusters.empty());
}

TEST(HumanMachineTest, SingletonClustersAreNeverFlagged) {
  util::Pcg32 rng(4);
  Population pop;
  // Two wildly different hosts: after any cut they are singletons.
  pop.add(with_interstitials(1, machine_gaps(rng, 10, 0.1, 100)));
  pop.add(with_interstitials(2, machine_gaps(rng, 5000, 1, 100)));
  const HumanMachineResult result = human_machine_test(pop.features, pop.input, {});
  EXPECT_TRUE(result.flagged.empty());
}

TEST(HumanMachineTest, DiameterPercentileControlsStrictness) {
  Population pop = bots_and_humans();
  HumanMachineConfig strict;
  strict.diameter_percentile = 0.0;  // only the single tightest cluster
  const HumanMachineResult strict_result = human_machine_test(pop.features, pop.input, strict);
  HumanMachineConfig lax;
  lax.diameter_percentile = 1.0;  // every cluster survives
  const HumanMachineResult lax_result = human_machine_test(pop.features, pop.input, lax);
  EXPECT_LE(strict_result.flagged.size(), lax_result.flagged.size());
  // At percentile 1.0, all clustered hosts are flagged.
  std::size_t clustered = 0;
  for (const auto& c : lax_result.clusters) clustered += c.members.size();
  EXPECT_EQ(lax_result.flagged.size(), clustered);
}

TEST(HumanMachineTest, FixedBinWidthVariantRuns) {
  Population pop = bots_and_humans();
  HumanMachineConfig config;
  config.fixed_bin_width = 10.0;
  const HumanMachineResult result = human_machine_test(pop.features, pop.input, config);
  // The bots' shared timer must still be visible with a sane fixed width.
  for (std::uint8_t b = 1; b <= 5; ++b) {
    EXPECT_TRUE(std::binary_search(result.flagged.begin(), result.flagged.end(), host(b)));
  }
}

TEST(HumanMachineTest, AlternativeDistancesRun) {
  Population pop = bots_and_humans();
  for (const HmDistance d :
       {HmDistance::kEmd, HmDistance::kEmdBinIndex, HmDistance::kBinL1}) {
    HumanMachineConfig config;
    config.distance = d;
    const HumanMachineResult result = human_machine_test(pop.features, pop.input, config);
    EXPECT_FALSE(result.clusters.empty());
  }
}

TEST(PairwiseBinL1, MassStraddlingZeroLandsInDistinctBins) {
  // Regression: binning with a truncating cast mapped +-grid/2 both to bin
  // 0, so two point masses on opposite sides of 0 compared as identical.
  // Floor-based binning puts them one bin apart: total L1 mass of 2.
  HumanMachineConfig config;
  config.fixed_bin_width = 60.0;
  const std::vector<stats::Signature> sigs = {{{-30.0, 1.0}}, {{30.0, 1.0}}};
  const std::vector<double> d = pairwise_bin_l1(sigs, config);
  EXPECT_DOUBLE_EQ(d[0 * 2 + 1], 2.0);
  EXPECT_DOUBLE_EQ(d[1 * 2 + 0], 2.0);
}

TEST(PairwiseBinL1, NegativeAxisBinsConsistentWithPositive) {
  // Mass at -90 and -30 (bins -2 and -1) must be as far apart as mass at
  // +30 and +90 (bins 0 and 1): truncation used to squash the negative
  // pair into adjacent-looking bins asymmetrically.
  HumanMachineConfig config;
  config.fixed_bin_width = 60.0;
  const std::vector<stats::Signature> sigs = {
      {{-90.0, 1.0}}, {{-30.0, 1.0}}, {{30.0, 1.0}}, {{90.0, 1.0}}};
  const std::vector<double> d = pairwise_bin_l1(sigs, config);
  EXPECT_DOUBLE_EQ(d[0 * 4 + 1], d[2 * 4 + 3]);  // one bin apart each
  EXPECT_DOUBLE_EQ(d[1 * 4 + 2], 2.0);           // -30 vs 30: different bins
}

// The pre-flat formulation of pairwise_bin_l1 for one pair: accumulate each
// signature into an ordered map keyed by the floor bin, then L1 over the
// union of bins in ascending order — the operation sequence the flat
// dense/sparse kernels must reproduce exactly.
double reference_bin_l1(const stats::Signature& a, const stats::Signature& b, double grid) {
  const auto binned = [grid](const stats::Signature& s) {
    std::map<long long, double> acc;
    for (const stats::SignaturePoint& p : s) {
      acc[std::llround(std::floor(p.position / grid))] += p.weight;
    }
    return acc;
  };
  const std::map<long long, double> wa = binned(a);
  const std::map<long long, double> wb = binned(b);
  double l1 = 0.0;
  auto ia = wa.begin();
  auto ib = wb.begin();
  while (ia != wa.end() || ib != wb.end()) {
    if (ib == wb.end() || (ia != wa.end() && ia->first < ib->first)) {
      l1 += std::abs(ia->second);
      ++ia;
    } else if (ia == wa.end() || ib->first < ia->first) {
      l1 += std::abs(ib->second);
      ++ib;
    } else {
      l1 += std::abs(ia->second - ib->second);
      ++ia;
      ++ib;
    }
  }
  return l1;
}

stats::Signature random_l1_sig(util::Pcg32& rng, bool wide) {
  const auto n = static_cast<std::size_t>(rng.uniform_int(1, 30));
  stats::Signature s;
  for (std::size_t i = 0; i < n; ++i) {
    // `wide` scatters mass far enough that the population overflows the
    // dense-bin budget and the sparse merge path runs instead.
    const double scale = wide ? 1.0e7 : 600.0;
    s.push_back({rng.uniform(-scale, scale), rng.uniform(0.0, 2.0)});
  }
  s[0].weight += 0.125;
  return s;
}

TEST(PairwiseBinL1, FlatKernelMatchesOrderedMapReferenceBitwise) {
  util::Pcg32 rng(0xB117);
  HumanMachineConfig config;
  config.fixed_bin_width = 60.0;
  for (const bool wide : {false, true}) {
    std::vector<stats::Signature> sigs;
    for (int i = 0; i < 20; ++i) sigs.push_back(random_l1_sig(rng, wide));
    const std::vector<double> d = pairwise_bin_l1(sigs, config);
    for (std::size_t i = 0; i < sigs.size(); ++i) {
      for (std::size_t j = i + 1; j < sigs.size(); ++j) {
        const double ref = reference_bin_l1(sigs[i], sigs[j], 60.0);
        const double got = d[i * sigs.size() + j];
        ASSERT_EQ(std::memcmp(&ref, &got, sizeof ref), 0)
            << (wide ? "sparse" : "dense") << " pair " << i << "," << j << ": reference "
            << ref << " vs flat " << got;
        ASSERT_EQ(got, d[j * sigs.size() + i]);  // mirrored
      }
    }
  }
}

TEST(PairwiseBinL1, BitIdenticalAcrossThreadCounts) {
  util::Pcg32 rng(0xB118);
  std::vector<stats::Signature> sigs;
  for (int i = 0; i < 65; ++i) sigs.push_back(random_l1_sig(rng, false));
  HumanMachineConfig serial;
  serial.fixed_bin_width = 60.0;
  serial.threads = 1;
  const std::vector<double> reference = pairwise_bin_l1(sigs, serial);
  for (const std::size_t threads : {2u, 8u}) {
    HumanMachineConfig config;
    config.fixed_bin_width = 60.0;
    config.threads = threads;
    const std::vector<double> d = pairwise_bin_l1(sigs, config);
    ASSERT_EQ(std::memcmp(reference.data(), d.data(), d.size() * sizeof(double)), 0)
        << threads << " threads";
  }
}

TEST(PairwiseBinL1, ValidatesSignaturesUpFrontWithPinnedMessages) {
  HumanMachineConfig config;
  config.threads = 8;  // the throw must happen before any worker runs
  const auto message = [&](const std::vector<stats::Signature>& sigs) -> std::string {
    try {
      (void)pairwise_bin_l1(sigs, config);
    } catch (const util::ConfigError& e) {
      return e.what();
    }
    return "(no throw)";
  };
  EXPECT_EQ(message({{{1.0, 1.0}}, {{2.0, -0.25}}}),
            "config error: bin-L1: negative signature weight");
  EXPECT_EQ(message({{{1.0, 1.0}}, {{2.0, 0.0}}}),
            "config error: bin-L1: signature has no mass");
}

TEST(HumanMachineTest, RejectsNegativeOrNonFiniteFixedBinWidth) {
  // S1 regression: a negative or non-finite width used to fall silently
  // back to the 60 s bin-L1 grid. It is a misconfiguration and must throw;
  // 0 stays valid as the documented FD / 60 s fallback sentinel.
  Population pop = bots_and_humans();
  for (const double bad : {-1.0, -0.0625, std::nan(""), HUGE_VAL, -HUGE_VAL}) {
    HumanMachineConfig config;
    config.fixed_bin_width = bad;
    EXPECT_THROW((void)human_machine_test(pop.features, pop.input, config),
                 util::ConfigError)
        << "width " << bad;
    config.distance = HmDistance::kBinL1;
    EXPECT_THROW((void)pairwise_bin_l1({{{1.0, 1.0}}, {{2.0, 1.0}}}, config),
                 util::ConfigError)
        << "width " << bad;
  }
  HumanMachineConfig zero;
  zero.fixed_bin_width = 0.0;
  EXPECT_NO_THROW((void)human_machine_test(pop.features, pop.input, zero));
}

TEST(HumanMachineTest, DegenerateHostIsSkippedNotFatal) {
  // S2 regression: a host whose timing buffer holds non-finite samples used
  // to throw from the signature/distance kernels and abort the whole
  // window. It must instead be skipped and accounted, with the remaining
  // hosts' verdict identical to a run that never saw it.
  Population clean = bots_and_humans();
  const HumanMachineResult want = human_machine_test(clean.features, clean.input, {});

  Population dirty = bots_and_humans();
  std::vector<double> bad(50, 10.0);
  bad[17] = std::numeric_limits<double>::quiet_NaN();
  dirty.add(with_interstitials(99, std::move(bad)));
  const HumanMachineResult got = human_machine_test(dirty.features, dirty.input, {});

  EXPECT_TRUE(got.degraded);
  EXPECT_EQ(got.degenerate, HostSet{host(99)});
  EXPECT_TRUE(std::binary_search(got.skipped.begin(), got.skipped.end(), host(99)));
  EXPECT_EQ(got.flagged, want.flagged);
  EXPECT_EQ(got.tau_hm, want.tau_hm);  // bitwise: the host never entered
  ASSERT_EQ(got.clusters.size(), want.clusters.size());
  for (std::size_t c = 0; c < want.clusters.size(); ++c) {
    EXPECT_EQ(got.clusters[c].members, want.clusters[c].members);
    EXPECT_EQ(got.clusters[c].diameter, want.clusters[c].diameter);
  }

  // Infinity is as degenerate as NaN.
  Population inf_pop = bots_and_humans();
  std::vector<double> inf_gaps(50, 10.0);
  inf_gaps[3] = HUGE_VAL;
  inf_pop.add(with_interstitials(98, std::move(inf_gaps)));
  const HumanMachineResult inf_got =
      human_machine_test(inf_pop.features, inf_pop.input, {});
  EXPECT_TRUE(inf_got.degraded);
  EXPECT_EQ(inf_got.degenerate, HostSet{host(98)});
  EXPECT_EQ(inf_got.flagged, want.flagged);
}

TEST(HumanMachineTest, CleanWindowIsNotDegraded) {
  Population pop = bots_and_humans();
  const HumanMachineResult result = human_machine_test(pop.features, pop.input, {});
  EXPECT_FALSE(result.degraded);
  EXPECT_TRUE(result.degenerate.empty());
}

TEST(HumanMachineTest, ThreadCountDoesNotChangeTheResult) {
  Population pop = bots_and_humans();
  HumanMachineConfig serial;
  serial.threads = 1;
  const HumanMachineResult reference = human_machine_test(pop.features, pop.input, serial);
  for (const std::size_t threads : {2u, 8u}) {
    HumanMachineConfig config;
    config.threads = threads;
    const HumanMachineResult result = human_machine_test(pop.features, pop.input, config);
    EXPECT_EQ(result.flagged, reference.flagged) << threads << " threads";
    EXPECT_EQ(result.tau_hm, reference.tau_hm) << threads << " threads";
    ASSERT_EQ(result.clusters.size(), reference.clusters.size());
    for (std::size_t c = 0; c < result.clusters.size(); ++c) {
      EXPECT_EQ(result.clusters[c].members, reference.clusters[c].members);
      EXPECT_EQ(result.clusters[c].diameter, reference.clusters[c].diameter);
    }
  }
}

TEST(HumanMachineTest, JitteredAndDilutedBotsEscape) {
  // The paper's Fig. 12 mechanism in miniature. Jitter alone does not break
  // the similarity of bots running the same algorithm (their smeared
  // distributions stay identical); what pushes them apart is the smear
  // *combined* with the traffic of the host each bot rides on — once the
  // comb no longer dominates, the per-carrier background differences do.
  util::Pcg32 rng(5);
  Population pop;
  for (std::uint8_t b = 1; b <= 5; ++b) {
    // timer 30 s + uniform jitter of +-300 s, mixed with the carrier's own
    // human traffic at a per-host scale.
    std::vector<double> gaps(400);
    for (double& g : gaps) g = 30.0 + rng.uniform(0.0, 600.0);
    const auto background = human_gaps(rng, 5.5 + b * 0.5, 120);
    gaps.insert(gaps.end(), background.begin(), background.end());
    pop.add(with_interstitials(b, std::move(gaps)));
  }
  for (std::uint8_t h = 20; h < 32; ++h) {
    pop.add(with_interstitials(h, human_gaps(rng, 5.0 + (h % 5) * 0.4, 300)));
  }
  const HumanMachineResult result = human_machine_test(pop.features, pop.input, {});
  std::size_t flagged_bots = 0;
  for (std::uint8_t b = 1; b <= 5; ++b) {
    if (std::binary_search(result.flagged.begin(), result.flagged.end(), host(b)))
      ++flagged_bots;
  }
  EXPECT_LT(flagged_bots, 5u);
}

}  // namespace
}  // namespace tradeplot::detect
