// eMule (eD2k + Kad) file-sharing host behaviour model.
//
// Mechanics modelled:
//   * a long-lived TCP connection to an eD2k index server (0xe3 LOGINREQUEST
//     framing in the payload prefix),
//   * Kad DHT keyword/source lookups executed against the shared Kademlia
//     Overlay — every probe of the iterative lookup becomes a UDP flow, and
//     probes to departed nodes become failed flows,
//   * eMule's queue discipline: contacting a source usually yields a small
//     "queued" exchange; the host re-asks sources on eMule's ~29-minute
//     timer (one of the few machine-periodic behaviours among Traders),
//   * part transfers (0xe3/0x46-0x47 frames) with bounded-Pareto sizes, and
//     inbound upload-slot service to external peers.
#pragma once

#include <vector>

#include "netflow/app_env.h"
#include "p2p/churn.h"
#include "netflow/flow_emit.h"
#include "p2p/kademlia.h"
#include "util/rng.h"

namespace tradeplot::p2p {

struct EMuleConfig {
  double session_start_frac_max = 0.5;
  double session_mu = 9.5;  // eMule clients run for hours, ~ 3.7 h median
  double session_sigma = 0.6;
  double think_mu = 5.2;  // new downloads started every ~3 min (median)
  double think_sigma = 1.1;
  int sources_per_lookup = 8;
  double queue_only_prob = 0.65;  // contact ends in a queue slot, not data
  double reask_period = 1760.0;   // eMule re-ask timer (~29 min)
  double reask_jitter = 420.0;
  double file_lo_bytes = 5e5;
  double file_hi_bytes = 7e8;  // eD2k carries large archives/movies
  double file_alpha = 1.05;
  double rate_lo = 3e4;
  double rate_hi = 6e5;
  double inbound_per_hour = 8.0;
  ChurnParams churn{};
  LookupParams lookup{};
};

class EMuleHost {
 public:
  /// `kad` may be null: lookups then fall back to synthetic source discovery
  /// (fresh external addresses), keeping the model usable without an overlay.
  EMuleHost(netflow::AppEnv env, simnet::Ipv4 self, util::Pcg32 rng, Overlay* kad,
            EMuleConfig config = {});

  void start();

  static constexpr std::uint16_t kTcpPort = 4662;
  static constexpr std::uint16_t kUdpPort = 4672;
  static constexpr std::uint16_t kServerPort = 4661;

 private:
  struct Source {
    simnet::Ipv4 addr;
    bool queued = true;
  };

  void begin_session();
  void download_loop(double session_end);
  void start_download(double session_end);
  void contact_source(simnet::Ipv4 addr, double session_end, bool is_reask);
  void schedule_reask(simnet::Ipv4 addr, double session_end);
  void serve_inbound_loop(double session_end);
  /// Runs a Kad lookup and emits its probe flows; returns discovered source
  /// addresses (which may be stale).
  std::vector<simnet::Ipv4> kad_discover_sources();

  netflow::AppEnv env_;
  util::Pcg32 rng_;
  netflow::FlowEmitter emit_;
  Overlay* kad_;
  EMuleConfig config_;
  ChurnModel churn_;
  RoutingTable table_;
};

}  // namespace tradeplot::p2p
