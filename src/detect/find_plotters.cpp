#include "detect/find_plotters.h"

#include "obs/profiler.h"

namespace tradeplot::detect {

FindPlottersResult find_plotters(const FeatureMap& features, const FindPlottersConfig& config,
                                 HmCache* cache) {
  FindPlottersResult result;
  result.input = all_hosts(features);
  if (result.input.empty()) return result;
  {
    const obs::StageTimer timer(obs::Stage::kDataReduction);
    result.reduced = data_reduction(features, result.input, config.reduction);
  }
  if (result.reduced.empty()) return result;  // nobody above the failed-rate median
  {
    const obs::StageTimer timer(obs::Stage::kThetaVol);
    result.s_vol = volume_test(features, result.reduced, config.volume);
  }
  {
    const obs::StageTimer timer(obs::Stage::kThetaChurn);
    result.s_churn = churn_test(features, result.reduced, config.churn);
  }
  result.vol_or_churn = host_union(result.s_vol, result.s_churn);
  {
    const obs::StageTimer timer(obs::Stage::kThetaHm);
    result.hm = human_machine_test(features, result.vol_or_churn, config.human_machine, cache);
  }
  result.plotters = result.hm.flagged;
  return result;
}

}  // namespace tradeplot::detect
