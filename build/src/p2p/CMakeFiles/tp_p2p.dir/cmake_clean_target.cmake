file(REMOVE_RECURSE
  "libtp_p2p.a"
)
