# Empty dependencies file for p2p_churn_test.
# This may be replaced when dependencies are built.
