#!/usr/bin/env python3
"""End-to-end lifecycle test for campus_monitord driven through its real CLI.

Covers the operator-visible contract of the daemon binary:

  * config --check: a good config prints a summary and exits 0, a config
    with a typo'd key is rejected with a nonzero exit;
  * startup: the `ready ingest_port=N http_port=M` line reports the actual
    bound ports so a config with port 0 is usable from scripts;
  * ingestion: campus_monitor --send streams a trace and reports the
    daemon's accounting line;
  * crash recovery: kill -9, restart on the same state dir, resend the
    same trace — the sender fast-forwards to the daemon's cursor and the
    deduped verdict log is bit-identical to an uninterrupted reference
    daemon's log;
  * SIGHUP reload: adding a tenant section to the config file and HUPping
    the daemon makes the tenant appear in /tenants without a restart;
  * /metrics: scraped output passes scripts/check_prometheus.py with the
    service-layer families present;
  * SIGTERM: graceful drain, `shutdown complete`, exit 0.

Run by ctest as CliDaemonTest; binary paths arrive as flags.
"""

import argparse
import os
import re
import signal
import subprocess
import sys
import tempfile
import time
import urllib.request
from pathlib import Path


def check(condition, message):
    if not condition:
        print(f"FAIL: {message}", file=sys.stderr)
        sys.exit(1)


def run(cmd, **kwargs):
    print("+", " ".join(str(c) for c in cmd), flush=True)
    return subprocess.run(
        [str(c) for c in cmd], capture_output=True, text=True, timeout=240, **kwargs
    )


def http_get(port, path):
    with urllib.request.urlopen(f"http://127.0.0.1:{port}{path}", timeout=5) as resp:
        return resp.read().decode()


def write_config(path, state_dir, tenants):
    text = [
        "ingest = tcp:127.0.0.1:0",
        "http = tcp:127.0.0.1:0",
        f"state_dir = {state_dir}",
        "read_timeout = 10",
        "idle_timeout = 60",
        "metrics = true",
    ]
    for name in tenants:
        text += [
            f"[tenant {name}]",
            "window = 3600",
            "checkpoint_every = 5000",
            "queue_capacity = 65536",
            "overflow = block",
            "policy = skip",
        ]
    path.write_text("\n".join(text) + "\n")


class DaemonHandle:
    """A campus_monitord subprocess with its stdout tailed from a log file
    (a pipe would deadlock once the daemon outlives the reader)."""

    def __init__(self, binary, config, log_path):
        self.log_path = log_path
        self.log_file = open(log_path, "wb")
        print(f"+ {binary} --config {config}  (log: {log_path})", flush=True)
        self.proc = subprocess.Popen(
            [str(binary), "--config", str(config)],
            stdout=self.log_file, stderr=subprocess.STDOUT,
        )

    def log(self):
        return self.log_path.read_text(errors="replace")

    def wait_for(self, pattern, timeout=30):
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            m = re.search(pattern, self.log())
            if m:
                return m
            check(self.proc.poll() is None,
                  f"daemon exited (rc {self.proc.returncode}) while waiting for "
                  f"{pattern!r}; log:\n{self.log()}")
            time.sleep(0.05)
        check(False, f"timed out waiting for {pattern!r}; log:\n{self.log()}")

    def ports(self):
        m = self.wait_for(r"ready ingest_port=(\d+) http_port=(\d+)")
        ingest, http = int(m.group(1)), int(m.group(2))
        deadline = time.monotonic() + 30
        while time.monotonic() < deadline:  # readiness, not just liveness
            try:
                if "ready" in http_get(http, "/readyz"):
                    return ingest, http
            except OSError:
                pass
            time.sleep(0.05)
        check(False, "daemon never became ready")

    def terminate(self):
        self.proc.send_signal(signal.SIGTERM)
        rc = self.proc.wait(timeout=60)
        self.log_file.close()
        return rc

    def kill9(self):
        self.proc.kill()
        self.proc.wait(timeout=60)
        self.log_file.close()


def deduped_verdicts(path):
    """window_index -> full verdict line, last entry wins (resumed runs
    re-emit windows they recompute; the latest line is authoritative)."""
    out = {}
    for line in path.read_text().splitlines():
        m = re.search(r'"window_index":(\d+)', line)
        check(m is not None, f"unparseable verdict line in {path}: {line!r}")
        out[int(m.group(1))] = line
    return out


def send(monitor, trace, ingest_port, tenant):
    r = run([monitor, "--send", trace, "--endpoint",
             f"tcp:127.0.0.1:{ingest_port}", "--tenant", tenant])
    check(r.returncode == 0, f"--send failed: {r.stdout}{r.stderr}")
    m = re.search(r"sent (\d+) rows in (\d+) frames", r.stdout)
    check(m is not None, f"missing send report: {r.stdout}")
    return int(m.group(1))


def main():
    parser = argparse.ArgumentParser()
    parser.add_argument("--campus-monitord", required=True, type=Path)
    parser.add_argument("--campus-monitor", required=True, type=Path)
    parser.add_argument("--trace-tool", required=True, type=Path)
    parser.add_argument("--check-prometheus", required=True, type=Path)
    args = parser.parse_args()

    tmp = Path(tempfile.mkdtemp(prefix="tp_daemon_cli_"))
    trace = tmp / "trace.csv"
    gen = run([args.trace_tool, "generate", trace, "2"])
    check(gen.returncode == 0, f"trace_tool generate failed: {gen.stderr}")

    # --check: validation without starting anything.
    good_cfg = tmp / "good.conf"
    write_config(good_cfg, tmp / "check_state", ["campus"])
    r = run([args.campus_monitord, "--config", good_cfg, "--check"])
    check(r.returncode == 0 and "tenant campus" in r.stdout,
          f"--check rejected a valid config: {r.stdout}{r.stderr}")
    bad_cfg = tmp / "bad.conf"
    bad_cfg.write_text(good_cfg.read_text().replace("idle_timeout", "idle_timeuot"))
    r = run([args.campus_monitord, "--config", bad_cfg, "--check"])
    check(r.returncode != 0 and "error:" in r.stderr,
          "--check accepted a config with a typo'd key")

    # Crash recovery: send, kill -9, restart on the same state dir, resend.
    state_a = tmp / "state_a"
    state_a.mkdir()
    cfg_a = tmp / "a.conf"
    write_config(cfg_a, state_a, ["campus"])
    d1 = DaemonHandle(args.campus_monitord, cfg_a, tmp / "d1.log")
    ingest, _ = d1.ports()
    total_rows = send(args.campus_monitor, trace, ingest, "campus")
    check(total_rows > 5000, f"trace too small to cross a checkpoint: {total_rows}")
    d1.kill9()

    d2 = DaemonHandle(args.campus_monitord, cfg_a, tmp / "d2.log")
    ingest, http = d2.ports()
    resent = send(args.campus_monitor, trace, ingest, "campus")
    check(0 < resent < total_rows,
          f"resend did not fast-forward past the restored checkpoint: "
          f"resent {resent} of {total_rows}")

    # /metrics from the live daemon must satisfy the exposition checker.
    metrics = tmp / "metrics.prom"
    metrics.write_text(http_get(http, "/metrics"))
    r = run([sys.executable, args.check_prometheus, metrics,
             "--require", "tradeplot_svc_frames_total",
             "--require", "tradeplot_svc_rows_ingested_total",
             "--require", "tradeplot_svc_tenant_ready",
             "--require", "tradeplot_svc_queue_depth_rows",
             "--require", "tradeplot_svc_uptime_seconds_total"])
    check(r.returncode == 0, f"check_prometheus failed: {r.stdout}{r.stderr}")

    # SIGHUP reload: a tenant added to the file appears without a restart.
    write_config(cfg_a, state_a, ["campus", "annex"])
    os.kill(d2.proc.pid, signal.SIGHUP)
    d2.wait_for(r"1 added")
    tenants = http_get(http, "/tenants")
    check('"annex"' in tenants, f"/tenants missing reloaded tenant: {tenants}")

    rc = d2.terminate()
    check(rc == 0, f"SIGTERM exit code {rc}, want 0")
    check("shutdown complete" in d2.log(), "graceful shutdown banner missing")

    # Reference: one uninterrupted daemon on a fresh state dir.
    state_b = tmp / "state_b"
    state_b.mkdir()
    cfg_b = tmp / "b.conf"
    write_config(cfg_b, state_b, ["campus"])
    ref = DaemonHandle(args.campus_monitord, cfg_b, tmp / "ref.log")
    ingest, _ = ref.ports()
    check(send(args.campus_monitor, trace, ingest, "campus") == total_rows,
          "reference daemon accepted a different row count")
    check(ref.terminate() == 0, "reference daemon SIGTERM exit nonzero")

    got = deduped_verdicts(state_a / "campus.verdicts.jsonl")
    want = deduped_verdicts(state_b / "campus.verdicts.jsonl")
    check(sorted(got) == sorted(want),
          f"window sets differ: {sorted(got)} vs {sorted(want)}")
    for idx, line in want.items():
        check(got[idx] == line, f"window {idx} differs after crash recovery")
    print(f"PASS: {len(want)} windows bit-identical across kill -9 + restart; "
          "reload, metrics, and graceful shutdown verified")


if __name__ == "__main__":
    main()
