# Empty compiler generated dependencies file for detect_streaming_test.
# This may be replaced when dependencies are built.
