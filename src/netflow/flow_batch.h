// Columnar (structure-of-arrays) flow batches.
//
// FlowBatch holds the same fields as FlowRecord, but as parallel column
// vectors: one dense array per field, all indexed by row. The detection
// pipeline's scans (data reduction, the θ_vol/θ_churn scalar tests, the
// streaming detector's per-flow accumulation) each touch only a handful of
// fields per flow, so scanning a column batch streams ~30 bytes per flow
// through the cache instead of the full 144-byte AoS record, and the counter
// columns vectorize (stats::simd integer reductions are exactly associative,
// hence bit-identical to the scalar loops).
//
// The record-oriented API survives as views: FlowRecordView is a zero-cost
// (pointer + index) accessor that mirrors FlowRecord's interface over one
// row, and record(i) materializes a full FlowRecord when a copy is needed.
// TraceReader::next_batch() decodes CSV/binary input straight into the
// columns; the binary v3 trace format (see io.h) stores these columns as
// contiguous fixed-stride blocks so a block read is a handful of
// memcpy-sized reads.
//
// Capacity is a soft bound: push_back past capacity() grows the columns
// (decoders use full() to stop at the configured batch size, but a binary v3
// block larger than the batch is still delivered whole).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string_view>
#include <vector>

#include "netflow/flow_record.h"

namespace tradeplot::netflow {

class FlowBatch;

/// Zero-cost row accessor over a FlowBatch: a (batch, row) pair exposing
/// FlowRecord's read interface. Valid only while the batch outlives the view
/// and the row is not truncated/cleared away.
class FlowRecordView {
 public:
  FlowRecordView(const FlowBatch& batch, std::size_t row) : batch_(&batch), row_(row) {}

  [[nodiscard]] simnet::Ipv4 src() const;
  [[nodiscard]] simnet::Ipv4 dst() const;
  [[nodiscard]] std::uint16_t sport() const;
  [[nodiscard]] std::uint16_t dport() const;
  [[nodiscard]] Protocol proto() const;
  [[nodiscard]] double start_time() const;
  [[nodiscard]] double end_time() const;
  [[nodiscard]] std::uint64_t pkts_src() const;
  [[nodiscard]] std::uint64_t pkts_dst() const;
  [[nodiscard]] std::uint64_t bytes_src() const;
  [[nodiscard]] std::uint64_t bytes_dst() const;
  [[nodiscard]] FlowState state() const;
  [[nodiscard]] std::uint8_t payload_len() const;

  [[nodiscard]] double duration() const { return end_time() - start_time(); }
  [[nodiscard]] std::uint64_t total_bytes() const { return bytes_src() + bytes_dst(); }
  [[nodiscard]] std::uint64_t total_pkts() const { return pkts_src() + pkts_dst(); }
  [[nodiscard]] bool failed() const { return state() != FlowState::kEstablished; }

  /// Payload prefix as a string_view into the batch (may contain NULs).
  [[nodiscard]] std::string_view payload_view() const;

  /// Copies the row out into a standalone FlowRecord.
  [[nodiscard]] FlowRecord materialize() const;

  [[nodiscard]] std::size_t row() const { return row_; }

 private:
  const FlowBatch* batch_;
  std::size_t row_;
};

class FlowBatch {
 public:
  /// Default row capacity: large enough that per-batch overheads amortize
  /// away, small enough that a batch's touched columns stay L2-resident.
  static constexpr std::size_t kDefaultCapacity = 4096;

  FlowBatch() : FlowBatch(kDefaultCapacity) {}
  explicit FlowBatch(std::size_t capacity);

  [[nodiscard]] std::size_t size() const { return src_.size(); }
  [[nodiscard]] std::size_t capacity() const { return capacity_; }
  [[nodiscard]] bool empty() const { return src_.empty(); }
  /// True once size() reached the soft capacity; decoders stop filling here.
  [[nodiscard]] bool full() const { return size() >= capacity_; }

  /// Drops all rows; column storage is retained for reuse.
  void clear();

  /// Appends a copy of `r` (grows past capacity() if needed).
  void push_back(const FlowRecord& r);

  /// Appends one zero-initialized row (payload slot zeroed) and returns its
  /// index. Decoders fill the row in place through the mutable column
  /// accessors; a failed decode undoes the append with truncate(size()-1).
  std::size_t append_default();

  /// Appends `n` zero-initialized rows (bulk binary block reads decode
  /// straight into the columns afterwards).
  void append_default(std::size_t n);

  /// Drops rows [new_size, size()).
  void truncate(std::size_t new_size);

  /// Removes the given rows (strictly increasing indices), compacting the
  /// survivors downward in order. Cold path: binary v3 row quarantine.
  void erase_rows(const std::vector<std::uint32_t>& sorted_rows);

  [[nodiscard]] FlowRecordView row(std::size_t i) const { return {*this, i}; }
  [[nodiscard]] FlowRecord record(std::size_t i) const;

  // Column accessors (const + mutable). Pointers are invalidated by any
  // size-changing call, exactly like std::vector::data().
  [[nodiscard]] const simnet::Ipv4* src() const { return src_.data(); }
  [[nodiscard]] const simnet::Ipv4* dst() const { return dst_.data(); }
  [[nodiscard]] const std::uint16_t* sport() const { return sport_.data(); }
  [[nodiscard]] const std::uint16_t* dport() const { return dport_.data(); }
  [[nodiscard]] const Protocol* proto() const { return proto_.data(); }
  [[nodiscard]] const double* start_time() const { return start_.data(); }
  [[nodiscard]] const double* end_time() const { return end_.data(); }
  [[nodiscard]] const std::uint64_t* pkts_src() const { return pkts_src_.data(); }
  [[nodiscard]] const std::uint64_t* pkts_dst() const { return pkts_dst_.data(); }
  [[nodiscard]] const std::uint64_t* bytes_src() const { return bytes_src_.data(); }
  [[nodiscard]] const std::uint64_t* bytes_dst() const { return bytes_dst_.data(); }
  [[nodiscard]] const FlowState* state() const { return state_.data(); }
  [[nodiscard]] const std::uint8_t* payload_len() const { return payload_len_.data(); }

  [[nodiscard]] simnet::Ipv4* src() { return src_.data(); }
  [[nodiscard]] simnet::Ipv4* dst() { return dst_.data(); }
  [[nodiscard]] std::uint16_t* sport() { return sport_.data(); }
  [[nodiscard]] std::uint16_t* dport() { return dport_.data(); }
  [[nodiscard]] Protocol* proto() { return proto_.data(); }
  [[nodiscard]] double* start_time() { return start_.data(); }
  [[nodiscard]] double* end_time() { return end_.data(); }
  [[nodiscard]] std::uint64_t* pkts_src() { return pkts_src_.data(); }
  [[nodiscard]] std::uint64_t* pkts_dst() { return pkts_dst_.data(); }
  [[nodiscard]] std::uint64_t* bytes_src() { return bytes_src_.data(); }
  [[nodiscard]] std::uint64_t* bytes_dst() { return bytes_dst_.data(); }
  [[nodiscard]] FlowState* state() { return state_.data(); }
  [[nodiscard]] std::uint8_t* payload_len() { return payload_len_.data(); }

  /// Row `i`'s payload slot: kPayloadPrefixLen bytes at a fixed stride,
  /// zero-padded past payload_len()[i].
  [[nodiscard]] const unsigned char* payload(std::size_t i) const {
    return payload_.data() + i * kPayloadPrefixLen;
  }
  [[nodiscard]] unsigned char* payload(std::size_t i) {
    return payload_.data() + i * kPayloadPrefixLen;
  }
  [[nodiscard]] std::string_view payload_view(std::size_t i) const {
    return {reinterpret_cast<const char*>(payload(i)), payload_len_[i]};
  }

  // Whole-batch reductions over the counter columns (stats::simd-backed;
  // integer arithmetic, so bit-identical to a scalar loop in any order).
  [[nodiscard]] std::uint64_t total_bytes() const;  // Σ bytes_src + Σ bytes_dst
  [[nodiscard]] std::uint64_t total_pkts() const;   // Σ pkts_src + Σ pkts_dst
  /// Rows whose state is not kEstablished (== FlowRecord::failed()).
  [[nodiscard]] std::size_t failed_count() const;

 private:
  std::size_t capacity_;

  std::vector<simnet::Ipv4> src_;
  std::vector<simnet::Ipv4> dst_;
  std::vector<std::uint16_t> sport_;
  std::vector<std::uint16_t> dport_;
  std::vector<Protocol> proto_;
  std::vector<double> start_;
  std::vector<double> end_;
  std::vector<std::uint64_t> pkts_src_;
  std::vector<std::uint64_t> pkts_dst_;
  std::vector<std::uint64_t> bytes_src_;
  std::vector<std::uint64_t> bytes_dst_;
  std::vector<FlowState> state_;
  std::vector<std::uint8_t> payload_len_;
  /// Fixed-stride payload slots: row i occupies bytes
  /// [i*kPayloadPrefixLen, (i+1)*kPayloadPrefixLen), zero-padded.
  std::vector<unsigned char> payload_;
};

inline simnet::Ipv4 FlowRecordView::src() const { return batch_->src()[row_]; }
inline simnet::Ipv4 FlowRecordView::dst() const { return batch_->dst()[row_]; }
inline std::uint16_t FlowRecordView::sport() const { return batch_->sport()[row_]; }
inline std::uint16_t FlowRecordView::dport() const { return batch_->dport()[row_]; }
inline Protocol FlowRecordView::proto() const { return batch_->proto()[row_]; }
inline double FlowRecordView::start_time() const { return batch_->start_time()[row_]; }
inline double FlowRecordView::end_time() const { return batch_->end_time()[row_]; }
inline std::uint64_t FlowRecordView::pkts_src() const { return batch_->pkts_src()[row_]; }
inline std::uint64_t FlowRecordView::pkts_dst() const { return batch_->pkts_dst()[row_]; }
inline std::uint64_t FlowRecordView::bytes_src() const { return batch_->bytes_src()[row_]; }
inline std::uint64_t FlowRecordView::bytes_dst() const { return batch_->bytes_dst()[row_]; }
inline FlowState FlowRecordView::state() const { return batch_->state()[row_]; }
inline std::uint8_t FlowRecordView::payload_len() const { return batch_->payload_len()[row_]; }
inline std::string_view FlowRecordView::payload_view() const {
  return batch_->payload_view(row_);
}
inline FlowRecord FlowRecordView::materialize() const { return batch_->record(row_); }

}  // namespace tradeplot::netflow
