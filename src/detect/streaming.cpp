#include "detect/streaming.h"

#include <algorithm>
#include <cmath>

#include "util/error.h"

namespace tradeplot::detect {

StreamingDetector::StreamingDetector(StreamingConfig config, VerdictSink sink)
    : config_(std::move(config)), sink_(std::move(sink)) {
  if (!config_.is_internal)
    throw util::ConfigError("StreamingDetector: is_internal required");
  if (config_.window <= 0.0)
    throw util::ConfigError("StreamingDetector: window must be > 0");
  if (!sink_) throw util::ConfigError("StreamingDetector: verdict sink required");
}

void StreamingDetector::ingest(const netflow::FlowRecord& flow) {
  if (!window_open_) {
    // First flow anchors the first window at a whole multiple of D, so
    // window boundaries are stable regardless of when traffic starts.
    window_start_ = std::floor(flow.start_time / config_.window) * config_.window;
    window_open_ = true;
  }
  roll_to(flow.start_time);

  const auto touch = [&](simnet::Ipv4 host, double t) -> HostState& {
    HostState& state = hosts_[host];
    if (!state.seen) {
      state.seen = true;
      state.features.host = host;
      state.features.first_activity = t;
    } else {
      state.features.first_activity = std::min(state.features.first_activity, t);
    }
    return state;
  };

  if (config_.is_internal(flow.src)) {
    HostState& state = touch(flow.src, flow.start_time);
    HostFeatures& f = state.features;
    f.flows_initiated += 1;
    if (flow.failed()) f.flows_failed += 1;
    f.bytes_sent_initiated += flow.bytes_src;
    // Destination bookkeeping: first/last contact drive churn and
    // interstitials incrementally.
    const auto first_it = state.first_contact.find(flow.dst);
    if (first_it == state.first_contact.end()) {
      state.first_contact.emplace(flow.dst, flow.start_time);
      f.distinct_dsts += 1;
    } else if (flow.start_time < first_it->second) {
      first_it->second = flow.start_time;  // late arrival predates first sight
    }
    const auto last_it = state.last_contact.find(flow.dst);
    if (last_it != state.last_contact.end()) {
      const double gap = flow.start_time - last_it->second;
      if (gap >= 0.0) {
        f.interstitials.push_back(gap);
        last_it->second = flow.start_time;
      } else {
        // Late arrival: record the magnitude; keeps memory O(1) per dst
        // while staying within sampling noise of the batch extractor.
        f.interstitials.push_back(-gap);
      }
    } else {
      state.last_contact.emplace(flow.dst, flow.start_time);
    }
  }
  if (config_.is_internal(flow.dst) && !flow.failed()) {
    HostState& state = touch(flow.dst, flow.start_time);
    state.features.flows_received += 1;
    state.features.bytes_sent_received += flow.bytes_dst;
  }
  ++flows_in_window_;
}

void StreamingDetector::roll_to(double time) {
  while (window_open_ && time >= window_start_ + config_.window) {
    emit();
    window_start_ += config_.window;
  }
}

void StreamingDetector::emit() {
  // Finalize churn: destinations first contacted after the grace horizon.
  FeatureMap features;
  features.reserve(hosts_.size());
  for (auto& [host, state] : hosts_) {
    HostFeatures& f = state.features;
    f.dsts_after_first_hour = 0;
    const double horizon = f.first_activity + config_.new_ip_grace;
    for (const auto& [dst, first] : state.first_contact) {
      if (first > horizon) f.dsts_after_first_hour += 1;
    }
    features.emplace(host, std::move(f));
  }

  WindowVerdict verdict;
  verdict.window_index = windows_emitted_;
  verdict.window_start = window_start_;
  verdict.window_end = window_start_ + config_.window;
  verdict.flows_seen = flows_in_window_;
  if (!features.empty()) {
    verdict.result = find_plotters(features, config_.pipeline);
  }
  sink_(verdict);

  hosts_.clear();
  flows_in_window_ = 0;
  ++windows_emitted_;
}

void StreamingDetector::flush() {
  if (!window_open_) return;
  emit();
  window_open_ = false;
}

}  // namespace tradeplot::detect
