file(REMOVE_RECURSE
  "libtp_netflow.a"
)
