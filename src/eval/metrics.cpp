#include "eval/metrics.h"

#include <algorithm>

namespace tradeplot::eval {

StageRates stage_rates(const DayData& day, const detect::HostSet& output,
                       const detect::HostSet& population) {
  StageRates r;
  std::size_t storm_hit = 0, nugache_hit = 0, fp_hit = 0, trader_hit = 0;
  const auto in_output = [&](simnet::Ipv4 host) {
    return std::binary_search(output.begin(), output.end(), host);
  };
  for (const simnet::Ipv4 host : population) {
    if (day.is_storm(host)) {
      ++r.storm_in_population;
      if (in_output(host)) ++storm_hit;
    } else if (day.is_nugache(host)) {
      ++r.nugache_in_population;
      if (in_output(host)) ++nugache_hit;
    } else {
      ++r.negatives_in_population;
      if (in_output(host)) ++fp_hit;
      if (day.is_trader(host)) {
        ++r.traders_in_population;
        if (in_output(host)) ++trader_hit;
      }
    }
  }
  r.flagged = output.size();
  if (r.storm_in_population > 0)
    r.storm_tp = static_cast<double>(storm_hit) / static_cast<double>(r.storm_in_population);
  if (r.nugache_in_population > 0)
    r.nugache_tp =
        static_cast<double>(nugache_hit) / static_cast<double>(r.nugache_in_population);
  if (r.negatives_in_population > 0)
    r.fp = static_cast<double>(fp_hit) / static_cast<double>(r.negatives_in_population);
  if (r.traders_in_population > 0)
    r.traders_remaining =
        static_cast<double>(trader_hit) / static_cast<double>(r.traders_in_population);
  return r;
}

StageRates average(const std::vector<StageRates>& days) {
  StageRates avg;
  if (days.empty()) return avg;
  const double n = static_cast<double>(days.size());
  for (const StageRates& d : days) {
    avg.storm_tp += d.storm_tp / n;
    avg.nugache_tp += d.nugache_tp / n;
    avg.fp += d.fp / n;
    avg.traders_remaining += d.traders_remaining / n;
    avg.storm_in_population += d.storm_in_population;
    avg.nugache_in_population += d.nugache_in_population;
    avg.negatives_in_population += d.negatives_in_population;
    avg.traders_in_population += d.traders_in_population;
    avg.flagged += d.flagged;
  }
  return avg;
}

}  // namespace tradeplot::eval
