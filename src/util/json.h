// Minimal streaming JSON writer — the repository's one JSON emission path.
//
// The bench binaries (`bench_pairwise --json`, `bench_io --json`) and the
// obs exposition layer all emit JSON; before this header each carried its own
// hand-rolled escaping and comma bookkeeping. JsonWriter centralizes both:
// it tracks the container stack (objects/arrays), inserts commas and
// indentation, and escapes strings per RFC 8259. Callers choose number
// formatting — value(double) renders the shortest round-trip form, while
// number(v, "%.3f") keeps printf-style control for reports whose precision
// is part of their committed shape (e.g. BENCH_pairwise.json).
//
// Header-only on purpose: the obs library uses it without linking tp_util,
// so the util <-> obs layering stays acyclic.
#pragma once

#include <charconv>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

namespace tradeplot::util {

/// Escapes `s` for inclusion inside a JSON string literal (quotes not
/// included): ", \, and control bytes below 0x20 (\n, \t, ... as short
/// escapes, \u00XX otherwise).
inline std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// Shortest round-trip decimal rendering of a finite double ("1.5", "42",
/// "3.0000000000000004e-05"). Non-finite values have no JSON representation;
/// json_number maps them to null, Prometheus exposition renders them itself.
inline std::string json_number(double v) {
  if (!std::isfinite(v)) return "null";
  char buf[32];
  const auto [p, ec] = std::to_chars(buf, buf + sizeof buf, v);
  return ec == std::errc() ? std::string(buf, p) : std::string("null");
}

class JsonWriter {
 public:
  /// Writes to `out` with two-space indentation (pass 0 for compact output).
  explicit JsonWriter(std::ostream& out, int indent = 2) : out_(out), indent_(indent) {}

  JsonWriter(const JsonWriter&) = delete;
  JsonWriter& operator=(const JsonWriter&) = delete;

  void begin_object() { open('{', Frame::kObject); }
  void end_object() { close('}'); }
  void begin_array() { open('[', Frame::kArray); }
  void end_array() { close(']'); }

  /// Emits the key of the next object member. Must be followed by exactly
  /// one value / container.
  void key(std::string_view k) {
    separate();
    out_ << '"' << json_escape(k) << "\":";
    if (indent_ > 0) out_ << ' ';
    pending_key_ = true;
  }

  void value(std::string_view s) { raw('"' + json_escape(s) + '"'); }
  void value(const char* s) { value(std::string_view(s)); }
  void value(bool b) { raw(b ? "true" : "false"); }
  void value(double v) { raw(json_number(v)); }
  void value(std::uint64_t v) { raw(std::to_string(v)); }
  void value(std::int64_t v) { raw(std::to_string(v)); }
  void value(int v) { raw(std::to_string(v)); }
  void value(unsigned v) { raw(std::to_string(v)); }
  void null() { raw("null"); }

  /// printf-formatted numeric value for reports whose precision is pinned
  /// (e.g. "%.3f", "%.3e"). `fmt` must produce a valid JSON number.
  void number(double v, const char* fmt) {
    if (!std::isfinite(v)) {
      null();
      return;
    }
    char buf[64];
    std::snprintf(buf, sizeof buf, fmt, v);
    raw(buf);
  }

  /// key() + value() in one call.
  template <typename T>
  void kv(std::string_view k, T&& v) {
    key(k);
    value(std::forward<T>(v));
  }

 private:
  enum class Frame : std::uint8_t { kObject, kArray };

  void open(char c, Frame f) {
    separate();
    out_ << c;
    stack_.push_back({f, false});
    pending_key_ = false;
  }

  void close(char c) {
    const bool had_members = !stack_.empty() && stack_.back().has_members;
    if (!stack_.empty()) stack_.pop_back();
    if (had_members) newline_indent();
    out_ << c;
    mark_member();
  }

  // Comma/newline bookkeeping before a new member (skipped when this value
  // completes a just-written key).
  void separate() {
    if (pending_key_) {
      pending_key_ = false;
      return;
    }
    if (stack_.empty()) return;
    if (stack_.back().has_members) out_ << ',';
    newline_indent();
  }

  void raw(std::string_view text) {
    separate();
    out_ << text;
    mark_member();
  }

  void mark_member() {
    if (!stack_.empty()) stack_.back().has_members = true;
    pending_key_ = false;
  }

  void newline_indent() {
    if (indent_ <= 0) return;
    out_ << '\n';
    for (std::size_t i = 0; i < stack_.size() * static_cast<std::size_t>(indent_); ++i)
      out_ << ' ';
  }

  struct State {
    Frame frame;
    bool has_members;
  };

  std::ostream& out_;
  int indent_;
  std::vector<State> stack_;
  bool pending_key_ = false;
};

}  // namespace tradeplot::util
