#include "stats/neighbor_index.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "stats/simd.h"
#include "util/parallel.h"

namespace tradeplot::stats {

namespace {

// Mirror of the clustering driver's admissibility margin (hcluster.cpp):
// absorbs rounding in reassociated sums and running means.
double with_margin(double bound) { return bound * (1.0 - 1e-9) - 1e-12; }

}  // namespace

NeighborIndex::NeighborIndex(std::size_t n, const PairDistanceFn& distance,
                             std::size_t pivots, std::size_t threads)
    : n_(n) {
  const std::size_t p_count = std::min(pivots, n);
  if (p_count == 0) return;
  pivot_leaves_.reserve(p_count);
  pivot_distances_.assign(n * p_count, 0.0);

  // Farthest-point selection: start from leaf 0, then repeatedly take the
  // leaf farthest from the chosen set (ties to the lowest index, already-
  // chosen leaves excluded). Every column is filled by one parallel pass of
  // independent pure calls; selection over the columns is serial, so the
  // pivot set is identical at every thread count.
  std::vector<double> min_dist(n, std::numeric_limits<double>::max());
  std::vector<char> chosen(n, 0);
  std::size_t next = 0;
  for (std::size_t p = 0; p < p_count; ++p) {
    const std::size_t pivot = next;
    pivot_leaves_.push_back(pivot);
    chosen[pivot] = 1;
    util::parallel_for(0, n, 64, threads, [&](std::size_t i) {
      if (i == pivot) {
        pivot_distances_[i * p_count + p] = 0.0;
        return;
      }
      // A pivot-pivot distance was already computed when the earlier pivot's
      // column was filled (the kernels are symmetric); reuse it instead of
      // paying the exact kernel twice for the same pair.
      for (std::size_t q = 0; q < p; ++q) {
        if (pivot_leaves_[q] == i) {
          pivot_distances_[i * p_count + p] = pivot_distances_[pivot * p_count + q];
          return;
        }
      }
      // Ordered arguments: the clustering engine's resolved-pair store
      // evaluates every leaf pair as (min, max), and the pivot columns are
      // seeded into that store as already-resolved values — the call shapes
      // must match exactly for the seeds to be bit-identical.
      pivot_distances_[i * p_count + p] =
          i < pivot ? distance(i, pivot) : distance(pivot, i);
    });
    double best = -1.0;
    next = pivot;
    for (std::size_t i = 0; i < n; ++i) {
      min_dist[i] = std::min(min_dist[i], pivot_distances_[i * p_count + p]);
      if (chosen[i] == 0 && min_dist[i] > best) {
        best = min_dist[i];
        next = i;
      }
    }
    if (next == pivot) break;  // every remaining leaf is already chosen
    // A farthest distance of zero means every remaining leaf coincides with
    // a chosen pivot; further columns would carry no bound information.
    if (best <= 0.0) break;
  }
  // If selection stopped early (n small or all leaves coincident), shrink the
  // table to the columns actually filled.
  if (pivot_leaves_.size() < p_count) {
    const std::size_t kept = pivot_leaves_.size();
    std::vector<double> packed(n * kept);
    for (std::size_t i = 0; i < n; ++i)
      for (std::size_t p = 0; p < kept; ++p)
        packed[i * kept + p] = pivot_distances_[i * p_count + p];
    pivot_distances_ = std::move(packed);
  }
}

void NeighborIndex::build_grid(const FlatSignatureSet& flat, std::size_t grid_bins,
                               std::size_t threads) {
  if (grid_bins == 0 || n_ == 0 || flat.size() != n_) return;
  double lo = std::numeric_limits<double>::max();
  double hi = std::numeric_limits<double>::lowest();
  for (std::size_t i = 0; i < n_; ++i) {
    const FlatSignatureView v = flat.view(i);
    if (v.size == 0) continue;
    lo = std::min(lo, v.positions[0]);           // positions are sorted
    hi = std::max(hi, v.positions[v.size - 1]);  // sentinel excluded by size
  }
  if (!(hi > lo)) return;  // single support point: bound would be vacuous

  const double width = (hi - lo) / static_cast<double>(grid_bins);
  grid_bins_ = grid_bins;
  grid_half_width_ = 0.5 * width;
  grid_.assign(n_ * grid_bins, 0.0);
  snap_cost_.assign(n_, 0.0);
  util::parallel_for(0, n_, 16, threads, [&](std::size_t i) {
    double* row = grid_.data() + i * grid_bins;
    double snap = 0.0;
    const FlatSignatureView v = flat.view(i);
    for (std::size_t k = 0; k < v.size; ++k) {
      auto bin = static_cast<std::size_t>(
          std::max(0.0, std::floor((v.positions[k] - lo) / width)));
      bin = std::min(bin, grid_bins - 1);
      row[bin] += v.weights[k];
      const double center = lo + (static_cast<double>(bin) + 0.5) * width;
      snap += v.weights[k] * std::abs(v.positions[k] - center);
    }
    snap_cost_[i] = snap;
  });
}

PruneFeatures NeighborIndex::features() const {
  PruneFeatures f;
  f.pivots = pivot_leaves_.size();
  f.pivot_distances = f.pivots > 0 ? pivot_distances_.data() : nullptr;
  f.grid_bins = grid_bins_;
  f.grid = grid_bins_ > 0 ? grid_.data() : nullptr;
  f.snap_cost = grid_bins_ > 0 ? snap_cost_.data() : nullptr;
  f.grid_half_width = grid_half_width_;
  // The columns hold exact (min, max)-ordered kernel values, so the engine
  // may seed its resolved-pair store with them (see PruneFeatures).
  f.pivot_leaves = f.pivots > 0 ? pivot_leaves_.data() : nullptr;
  return f;
}

double NeighborIndex::lower_bound(std::size_t i, std::size_t j) const {
  double lb = 0.0;
  const std::size_t p_count = pivot_leaves_.size();
  for (std::size_t p = 0; p < p_count; ++p) {
    lb = std::max(lb, std::abs(pivot_distances_[i * p_count + p] -
                               pivot_distances_[j * p_count + p]));
  }
  if (grid_bins_ > 0) {
    const double l1 = simd::l1_distance(grid_.data() + i * grid_bins_,
                                        grid_.data() + j * grid_bins_, grid_bins_);
    lb = std::max(lb, grid_half_width_ * l1 - snap_cost_[i] - snap_cost_[j]);
  }
  return with_margin(std::max(0.0, lb));
}

}  // namespace tradeplot::stats
