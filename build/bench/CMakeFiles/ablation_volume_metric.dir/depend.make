# Empty dependencies file for ablation_volume_metric.
# This may be replaced when dependencies are built.
