// Figure 9: results after applying the tests in sequence (the FindPlotters
// funnel), averaged over the eight days.
//
// Paper operating point: τ_vol = τ_churn = 50th percentile, τ_hm = 70th
// percentile of cluster diameters. Paper result: 87.50% Storm TP, 30%
// Nugache TP, 0.81% false positives; 5.40% of Traders remain, making up
// 7.11% of all hosts returned.
#include "bench/bench_util.h"

using namespace tradeplot;

int main() {
  benchx::header("Figure 9 - FindPlotters funnel (tau_vol/churn = p50, tau_hm = p70)");

  const eval::EvalConfig cfg = benchx::paper_eval_config();
  std::printf("  generating %d days...\n", cfg.days);
  const eval::DaySet days = eval::make_days(cfg);
  const eval::FunnelResult funnel = eval::funnel(days);

  std::printf("\n  %-16s %10s %12s %10s %10s %12s\n", "stage", "Storm TP", "Nugache TP", "FP",
              "flagged", "Traders left");
  for (const auto& stage : funnel.stages) {
    std::printf("  %-16s %9.2f%% %11.2f%% %9.2f%% %10.1f %11.2f%%\n", stage.name.c_str(),
                stage.rates.storm_tp * 100.0, stage.rates.nugache_tp * 100.0,
                stage.rates.fp * 100.0,
                static_cast<double>(stage.rates.flagged) /
                    static_cast<double>(days.storm_days.size()),
                stage.rates.traders_remaining * 100.0);
  }

  const eval::StageRates& final = funnel.stages.back().rates;
  double traders_in_output = 0.0;
  if (final.flagged > 0) {
    traders_in_output = final.traders_remaining *
                        static_cast<double>(final.traders_in_population) /
                        static_cast<double>(final.flagged);
  }
  std::printf("\n  final: Storm %.2f%% TP, Nugache %.2f%% TP, %.2f%% FP;\n",
              final.storm_tp * 100.0, final.nugache_tp * 100.0, final.fp * 100.0);
  std::printf("  Traders remaining %.2f%%, comprising %.2f%% of returned hosts\n",
              final.traders_remaining * 100.0, traders_in_output * 100.0);

  benchx::paper_reference(
      "Fig. 9: 'the false positive rate is reduced to 0.81%, while\n"
      "maintaining a 87.50% true positive rate for Storm and 30% for\n"
      "Nugache. ... On average, 5.40% of the Traders remained after\n"
      "applying the tests, which comprises 7.11% of all the hosts returned\n"
      "by FindPlotters.' Expect: Storm TP >= ~80%, Nugache TP ~25-40%, FP\n"
      "around or below ~2%, and a small Trader remainder.");
  return 0;
}
