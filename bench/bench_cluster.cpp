// The θ_hm clustering wall: exhaustive dense UPGMA vs. the pruned driver.
//
// Builds post-funnel populations of tight timer families plus a scattered
// human remnant, runs FindPlotters' human/machine stage once with
// HmPruning::kExhaustive and once with HmPruning::kPruned, and reports wall
// time, exact-EMD kernel evaluations, the eval-reduction factor, and whether
// the two verdicts (flagged set, clusters, diameters, τ_hm) are bit-identical
// — the pruned path's contract is exactness, so any drift is a failure, not
// a tolerance.
//
//   bench_cluster [--quick] [--json <path>] [--hosts <n>[,<n>...]]
//
// --quick shrinks the population for CI smoke runs; --json writes the
// machine-readable report to <path>; --hosts overrides the size ladder (for
// profiling one configuration in isolation). TRADEPLOT_THREADS is parsed
// strictly: a malformed value aborts with the pinned config error on stderr
// and exit code 2.
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <limits>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "detect/human_machine.h"
#include "util/error.h"
#include "util/json.h"
#include "util/parallel.h"
#include "util/rng.h"

using namespace tradeplot;

namespace {

simnet::Ipv4 host_ip(std::uint32_t id) {
  return simnet::Ipv4(10, static_cast<std::uint8_t>(id >> 8), static_cast<std::uint8_t>(id),
                      1);
}

struct Population {
  detect::FeatureMap features;
  detect::HostSet input;
  std::size_t families = 0;
  std::size_t humans = 0;
};

// The post-funnel shape the pruned path exists for: 7/8 of the hosts sit in
// tight timer families (bots sharing a C&C beat), 1/8 are a lognormal human
// remnant. Family periods sit on a ladder with geometrically shrinking gaps,
// so every family is far from every other relative to its own diameter and
// each family's nearest neighbour is on its denser side — the regime where
// the paper's 25% cut isolates families and the metric bounds can carry
// almost every cross-family decision. The ladder ratio is chosen per
// population so the smallest inter-family gap stays at kGapMin, and the
// family count is capped at 256: bigger windows mean more bots per C&C
// beat, not more distinct beats, and past ~256 rungs a single geometric
// ladder flattens until adjacent gaps differ by less than the family
// diameter — at which point each family's nearest neighbour is no longer
// on its denser side and the NN-chain wanders across families instead of
// finishing each one locally.
Population make_population(std::size_t hosts, std::uint64_t seed) {
  util::Pcg32 rng(seed);
  Population pop;
  const std::size_t bots = hosts - hosts / 8;
  pop.families = std::min<std::size_t>(hosts / 8, 256);
  pop.humans = hosts - bots;
  constexpr double kGapFirst = 20.0;
  constexpr double kGapMin = 4.0;
  const double ratio =
      pop.families > 1
          ? std::pow(kGapMin / kGapFirst, 1.0 / static_cast<double>(pop.families - 1))
          : 1.0;
  for (std::size_t i = 0; i < hosts; ++i) {
    std::vector<double> gaps(80);
    if (i < bots) {
      double period = 8.0;
      if (pop.families > 1) {
        const double k = static_cast<double>(i % pop.families);
        period += kGapFirst * (1.0 - std::pow(ratio, k)) / (1.0 - ratio);
      }
      for (double& g : gaps) g = period + rng.uniform(-0.25, 0.25);
    } else {
      for (double& g : gaps) g = rng.lognormal(4.5, 1.0);
    }
    detect::HostFeatures f;
    f.host = host_ip(static_cast<std::uint32_t>(i));
    f.flows_initiated = gaps.size() + 1;
    f.interstitials = std::move(gaps);
    pop.input.push_back(f.host);
    pop.features.emplace(f.host, std::move(f));
  }
  return pop;
}

bool same_verdict(const detect::HumanMachineResult& a, const detect::HumanMachineResult& b) {
  if (a.flagged != b.flagged || a.skipped != b.skipped || a.degenerate != b.degenerate ||
      a.degraded != b.degraded) {
    return false;
  }
  if (std::memcmp(&a.tau_hm, &b.tau_hm, sizeof a.tau_hm) != 0) return false;
  if (a.clusters.size() != b.clusters.size()) return false;
  for (std::size_t c = 0; c < a.clusters.size(); ++c) {
    if (a.clusters[c].members != b.clusters[c].members) return false;
    if (a.clusters[c].kept != b.clusters[c].kept) return false;
    if (std::memcmp(&a.clusters[c].diameter, &b.clusters[c].diameter,
                    sizeof(double)) != 0) {
      return false;
    }
  }
  return true;
}

struct SizeReport {
  std::size_t hosts = 0;
  std::size_t families = 0;
  std::size_t humans = 0;
  std::uint64_t pairs = 0;
  /// False when the dense baseline was skipped (its two n×n matrices exceed
  /// memory at 100k hosts); the verdict oracle is then a second pruned run
  /// under different bound knobs and the exhaustive/speedup fields are null
  /// in the JSON.
  bool exhaustive_run = true;
  double exhaustive_ms = 0.0;
  double pruned_ms = 0.0;
  std::uint64_t exhaustive_evals = 0;
  std::uint64_t pruned_evals = 0;
  double eval_reduction = 0.0;
  double speedup = 0.0;
  std::uint64_t scan_cache_hits = 0;
  std::uint64_t bloom_skips = 0;
  double pivot_build_ms = 0.0;
  double bound_scan_ms = 0.0;
  double exact_eval_ms = 0.0;
  double replay_ms = 0.0;
  bool verdicts_identical = false;
};

void write_json(const std::string& path, bool quick,
                const std::optional<std::size_t>& env_threads,
                const std::vector<SizeReport>& reports, bool deterministic) {
  std::ofstream out(path);
  if (!out) throw util::IoError("bench_cluster: cannot write JSON to " + path);
  util::JsonWriter w(out);
  w.begin_object();
  w.kv("bench", "bench_cluster");
  w.kv("quick", quick);
  w.key("tradeplot_threads");
  if (env_threads) {
    w.value(static_cast<std::uint64_t>(*env_threads));
  } else {
    w.null();
  }
  w.kv("hardware_threads", std::thread::hardware_concurrency());
  w.key("configs");
  w.begin_array();
  for (const SizeReport& r : reports) {
    w.begin_object();
    w.kv("hosts", static_cast<std::uint64_t>(r.hosts));
    w.kv("families", static_cast<std::uint64_t>(r.families));
    w.kv("humans", static_cast<std::uint64_t>(r.humans));
    w.kv("pairs", r.pairs);
    w.kv("oracle", r.exhaustive_run ? "exhaustive" : "pruned_alt_bounds");
    w.key("exhaustive_ms");
    if (r.exhaustive_run) {
      w.number(r.exhaustive_ms, "%.3f");
    } else {
      w.null();
    }
    w.key("pruned_ms");
    w.number(r.pruned_ms, "%.3f");
    w.key("exhaustive_exact_evals");
    if (r.exhaustive_run) {
      w.value(r.exhaustive_evals);
    } else {
      w.null();
    }
    w.kv("pruned_exact_evals", r.pruned_evals);
    w.key("eval_reduction");
    if (r.exhaustive_run) {
      w.number(r.eval_reduction, "%.2f");
    } else {
      w.null();
    }
    w.key("speedup");
    if (r.exhaustive_run) {
      w.number(r.speedup, "%.3f");
    } else {
      w.null();
    }
    w.kv("scan_cache_hits", r.scan_cache_hits);
    w.kv("bloom_skips", r.bloom_skips);
    w.key("pivot_build_ms");
    w.number(r.pivot_build_ms, "%.3f");
    w.key("bound_scan_ms");
    w.number(r.bound_scan_ms, "%.3f");
    w.key("exact_eval_ms");
    w.number(r.exact_eval_ms, "%.3f");
    w.key("replay_ms");
    w.number(r.replay_ms, "%.3f");
    w.kv("verdicts_identical", r.verdicts_identical);
    w.end_object();
  }
  w.end_array();
  w.kv("determinism", deterministic ? "pass" : "fail");
  w.end_object();
  out << "\n";
  if (!out.flush()) throw util::IoError("bench_cluster: cannot write JSON to " + path);
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  std::string json_path;
  std::vector<std::size_t> size_override;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--quick") {
      quick = true;
    } else if (arg == "--json" && i + 1 < argc) {
      json_path = argv[++i];
    } else if (arg == "--hosts" && i + 1 < argc) {
      const std::string list = argv[++i];
      std::size_t start = 0;
      while (start <= list.size()) {
        const std::size_t comma = std::min(list.find(',', start), list.size());
        const std::string tok = list.substr(start, comma - start);
        char* end = nullptr;
        const unsigned long long v = std::strtoull(tok.c_str(), &end, 10);
        if (tok.empty() || end == nullptr || *end != '\0' || v < 16) {
          std::fprintf(stderr, "bench_cluster: bad --hosts value '%s'\n", tok.c_str());
          return 2;
        }
        size_override.push_back(static_cast<std::size_t>(v));
        start = comma + 1;
      }
    } else {
      std::fprintf(stderr,
                   "usage: bench_cluster [--quick] [--json <path>] [--hosts <n>[,<n>...]]\n");
      return 2;
    }
  }

  std::optional<std::size_t> env_threads;
  try {
    env_threads = util::threads_env_strict();
  } catch (const util::ConfigError& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return 2;
  }

  std::printf("==============================================================\n");
  std::printf("bench_cluster - theta_hm clustering, exhaustive vs pruned\n");
  std::printf("==============================================================\n");
  std::printf("  hardware threads: %zu, TRADEPLOT_THREADS: %s\n\n",
              static_cast<std::size_t>(std::thread::hardware_concurrency()),
              env_threads ? std::to_string(*env_threads).c_str() : "(unset)");

  const std::vector<std::size_t> sizes =
      !size_override.empty() ? size_override
      : quick                ? std::vector<std::size_t>{256}
                             : std::vector<std::size_t>{512, 1024, 4096, 16384, 32768, 100000};
  // The dense baseline materializes two n×n double matrices (the distance
  // matrix plus the clustering driver's working copy) — ~160 GB at 100k
  // hosts. Past this cap the pruned path is verified against a second pruned
  // run under different bound knobs instead: different pivots and grid mean
  // different elimination decisions everywhere, so agreement is an
  // end-to-end check of the exactness argument, not a self-comparison.
  constexpr std::size_t kMaxExhaustiveHosts = 32768;

  std::vector<SizeReport> reports;
  bool deterministic = true;

  for (const std::size_t hosts : sizes) {
    const Population pop = make_population(hosts, 20100621 + hosts);

    detect::HumanMachineConfig exhaustive;
    exhaustive.min_samples = 10;
    exhaustive.pruning = detect::HmPruning::kExhaustive;
    detect::HumanMachineConfig pruned = exhaustive;
    pruned.pruning = detect::HmPruning::kPruned;

    SizeReport r;
    r.hosts = hosts;
    r.families = pop.families;
    r.humans = pop.humans;
    r.exhaustive_run = hosts <= kMaxExhaustiveHosts;

    // Sub-10ms runs on a busy machine are noise; repeat the small configs
    // and keep the best wall time for each path (standard practice — the
    // minimum is the run least disturbed by unrelated load, and both paths
    // get the same treatment).
    const std::size_t repeats = hosts <= 1024 ? 5 : 1;

    std::optional<detect::HumanMachineResult> want;
    if (r.exhaustive_run) {
      r.exhaustive_ms = std::numeric_limits<double>::max();
      for (std::size_t rep = 0; rep < repeats; ++rep) {
        const auto t0 = std::chrono::steady_clock::now();
        want = detect::human_machine_test(pop.features, pop.input, exhaustive);
        const auto t1 = std::chrono::steady_clock::now();
        r.exhaustive_ms = std::min(
            r.exhaustive_ms, std::chrono::duration<double, std::milli>(t1 - t0).count());
      }
      r.exhaustive_evals = want->prune.exact_kernel_evals;
    }

    std::optional<detect::HumanMachineResult> pruned_result;
    r.pruned_ms = std::numeric_limits<double>::max();
    for (std::size_t rep = 0; rep < repeats; ++rep) {
      const auto t1 = std::chrono::steady_clock::now();
      pruned_result = detect::human_machine_test(pop.features, pop.input, pruned);
      const auto t2 = std::chrono::steady_clock::now();
      r.pruned_ms =
          std::min(r.pruned_ms, std::chrono::duration<double, std::milli>(t2 - t1).count());
    }
    const detect::HumanMachineResult& got = *pruned_result;

    // Phase attribution comes from a second, instrumented run: the phase
    // clocks sit inside the scan and resolve hot loops, so including them in
    // the timed run would charge the pruned path for its own telemetry. The
    // instrumented run repeats identical work (the engine is deterministic),
    // and doubles as a free determinism check.
    detect::HumanMachineConfig instrumented = pruned;
    instrumented.collect_phase_timing = true;
    const detect::HumanMachineResult timed =
        detect::human_machine_test(pop.features, pop.input, instrumented);

    r.pairs = got.prune.pairs_total;
    r.pruned_evals = got.prune.exact_kernel_evals;
    r.scan_cache_hits = got.prune.scan_cache_hits;
    r.bloom_skips = got.prune.bloom_skips;
    r.pivot_build_ms = timed.prune.pivot_build_ms;
    r.bound_scan_ms = timed.prune.bound_scan_ms;
    r.exact_eval_ms = timed.prune.exact_eval_ms;
    r.replay_ms = timed.prune.replay_ms;
    deterministic = deterministic && same_verdict(got, timed);

    std::printf("  %6zu hosts (%zu families, %zu humans), %llu pairs:\n", hosts,
                pop.families, pop.humans, static_cast<unsigned long long>(r.pairs));
    if (r.exhaustive_run) {
      r.eval_reduction = r.pruned_evals == 0
                             ? 0.0
                             : static_cast<double>(r.exhaustive_evals) /
                                   static_cast<double>(r.pruned_evals);
      r.speedup = r.pruned_ms > 0.0 ? r.exhaustive_ms / r.pruned_ms : 0.0;
      r.verdicts_identical = same_verdict(got, *want);
      std::printf("    exhaustive: %9.1f ms, %10llu exact EMD evals\n", r.exhaustive_ms,
                  static_cast<unsigned long long>(r.exhaustive_evals));
    } else {
      detect::HumanMachineConfig alt = pruned;
      alt.collect_phase_timing = false;
      alt.prune_pivots = 5;
      alt.prune_grid_bins = 48;
      const detect::HumanMachineResult oracle =
          detect::human_machine_test(pop.features, pop.input, alt);
      r.verdicts_identical = same_verdict(got, oracle);
      std::printf("    exhaustive: skipped (dense matrices exceed memory); "
                  "oracle: pruned with pivots=5, grid=48\n");
    }
    std::printf("    pruned:     %9.1f ms, %10llu exact EMD evals\n", r.pruned_ms,
                static_cast<unsigned long long>(r.pruned_evals));
    std::printf("    phases: pivot build %.1f ms, bound scans %.1f ms, exact evals "
                "%.1f ms, replay %.1f ms\n",
                r.pivot_build_ms, r.bound_scan_ms, r.exact_eval_ms, r.replay_ms);
    if (r.exhaustive_run) {
      std::printf("    eval reduction: %.1fx, speedup: %.2fx, verdicts %s\n\n",
                  r.eval_reduction, r.speedup,
                  r.verdicts_identical ? "bit-identical" : "DIVERGED");
    } else {
      std::printf("    verdicts %s\n\n",
                  r.verdicts_identical ? "bit-identical" : "DIVERGED");
    }
    deterministic = deterministic && r.verdicts_identical;
    reports.push_back(r);
  }

  if (!json_path.empty()) write_json(json_path, quick, env_threads, reports, deterministic);

  if (!deterministic) {
    std::fprintf(stderr, "bench_cluster: pruned verdicts diverged from exhaustive\n");
    return 1;
  }
  return 0;
}
