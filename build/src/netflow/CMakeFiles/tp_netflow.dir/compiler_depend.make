# Empty compiler generated dependencies file for tp_netflow.
# This may be replaced when dependencies are built.
