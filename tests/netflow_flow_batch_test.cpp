// Columnar flow batches: FlowBatch container semantics, batch decoding
// parity with record-at-a-time decoding (flows AND ingest accounting,
// across the FaultInjector corpus and every error policy), the binary v3
// column-block format, and the ingestion bugfix sweep (line-number
// accounting at the read-buffer boundary, end_time < start_time rejection).
#include "netflow/flow_batch.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <sstream>
#include <string>
#include <vector>

#include "detect/features.h"
#include "netflow/fault_injector.h"
#include "netflow/io.h"
#include "netflow/trace_reader.h"
#include "util/error.h"
#include "util/rng.h"

namespace tradeplot::netflow {
namespace {

TraceSet sample_trace(int flows = 200, std::uint64_t seed = 1, bool payloads = true) {
  util::Pcg32 rng(seed);
  TraceSet trace(0.0, 21600.0);
  trace.set_truth(simnet::Ipv4(128, 2, 0, 1), HostKind::kWebClient);
  trace.set_truth(simnet::Ipv4(128, 2, 0, 2), HostKind::kStorm);
  for (int i = 0; i < flows; ++i) {
    FlowRecord r;
    r.src = simnet::Ipv4(128, 2, 0, static_cast<std::uint8_t>(1 + (i % 8)));
    r.dst = simnet::Ipv4(static_cast<std::uint32_t>(rng.uniform_int(1 << 26, 1 << 28)));
    r.sport = static_cast<std::uint16_t>(rng.uniform_int(1024, 65535));
    r.dport = static_cast<std::uint16_t>(rng.uniform_int(1, 1023));
    r.proto = rng.chance(0.5) ? Protocol::kTcp : Protocol::kUdp;
    r.start_time = rng.uniform(0, 21000);
    r.end_time = r.start_time + rng.uniform(0, 60);
    r.pkts_src = static_cast<std::uint64_t>(rng.uniform_int(1, 100));
    r.pkts_dst = static_cast<std::uint64_t>(rng.uniform_int(0, 100));
    r.bytes_src = static_cast<std::uint64_t>(rng.uniform_int(0, 100000));
    r.bytes_dst = static_cast<std::uint64_t>(rng.uniform_int(0, 1000000));
    r.state = r.pkts_dst == 0 ? FlowState::kAttempted : FlowState::kEstablished;
    if (payloads && rng.chance(0.5))
      r.set_payload(std::string_view("\xe3\x01\x02" "batch\x00" "payload", 16));
    trace.add_flow(std::move(r));
  }
  return trace;
}

std::string csv_bytes(const TraceSet& trace) {
  std::stringstream buffer;
  write_csv(buffer, trace);
  return buffer.str();
}

std::string binary_bytes(const TraceSet& trace) {
  std::stringstream buffer;
  write_binary(buffer, trace);
  return buffer.str();
}

std::string columnar_bytes(const TraceSet& trace) {
  std::stringstream buffer;
  write_binary_columnar(buffer, trace);
  return buffer.str();
}

void expect_stats_equal(const IngestStats& a, const IngestStats& b) {
  EXPECT_EQ(a.records_ok, b.records_ok);
  EXPECT_EQ(a.records_quarantined, b.records_quarantined);
  EXPECT_EQ(a.resync_events, b.resync_events);
  EXPECT_EQ(a.lost_sync, b.lost_sync);
  EXPECT_EQ(a.first_error, b.first_error);
  EXPECT_EQ(a.first_error_record, b.first_error_record);
}

/// A full drain of one stream: the delivered flows, the final ingest stats,
/// and whether the drain threw (strict / exhausted stop-after budgets).
struct Drained {
  std::vector<FlowRecord> flows;
  IngestStats stats;
  bool threw = false;
  std::string error;
};

Drained drain_records(const std::string& bytes, const ErrorPolicy& policy) {
  std::stringstream in(bytes);
  TraceReader reader(in, policy);
  Drained d;
  FlowRecord rec;
  try {
    while (reader.next(rec)) d.flows.push_back(rec);
  } catch (const std::exception& e) {
    d.threw = true;
    d.error = e.what();
  }
  d.stats = reader.ingest_stats();
  return d;
}

Drained drain_batches(const std::string& bytes, const ErrorPolicy& policy,
                      std::size_t capacity = FlowBatch::kDefaultCapacity) {
  std::stringstream in(bytes);
  TraceReader reader(in, policy);
  Drained d;
  FlowBatch batch(capacity);
  try {
    while (reader.next_batch(batch) > 0)
      for (std::size_t i = 0; i < batch.size(); ++i) d.flows.push_back(batch.record(i));
  } catch (const std::exception& e) {
    // Rows staged before the thrown fault were decoded and counted by the
    // reader; a caller that wants them (see detect::feed) reads them out of
    // the partial batch.
    for (std::size_t i = 0; i < batch.size(); ++i) d.flows.push_back(batch.record(i));
    d.threw = true;
    d.error = e.what();
  }
  d.stats = reader.ingest_stats();
  return d;
}

void expect_drains_equal(const Drained& rec, const Drained& bat, const char* what) {
  SCOPED_TRACE(what);
  EXPECT_EQ(rec.threw, bat.threw);
  EXPECT_EQ(rec.error, bat.error);
  ASSERT_EQ(rec.flows.size(), bat.flows.size());
  for (std::size_t i = 0; i < rec.flows.size(); ++i)
    ASSERT_EQ(rec.flows[i], bat.flows[i]) << "flow " << i;
  expect_stats_equal(rec.stats, bat.stats);
}

// ---------------------------------------------------------------------------
// FlowBatch container semantics.

TEST(FlowBatch, PushBackRoundTripsRecords) {
  const TraceSet trace = sample_trace(100, 17);
  FlowBatch batch;
  for (const FlowRecord& r : trace.flows()) batch.push_back(r);
  ASSERT_EQ(batch.size(), trace.flows().size());

  std::uint64_t bytes = 0, pkts = 0;
  std::size_t failed = 0;
  for (std::size_t i = 0; i < batch.size(); ++i) {
    const FlowRecord& want = trace.flows()[i];
    EXPECT_EQ(batch.record(i), want) << "row " << i;
    const FlowRecordView v = batch.row(i);
    EXPECT_EQ(v.src(), want.src);
    EXPECT_EQ(v.dst(), want.dst);
    EXPECT_EQ(v.sport(), want.sport);
    EXPECT_EQ(v.dport(), want.dport);
    EXPECT_EQ(v.proto(), want.proto);
    EXPECT_DOUBLE_EQ(v.start_time(), want.start_time);
    EXPECT_DOUBLE_EQ(v.end_time(), want.end_time);
    EXPECT_EQ(v.pkts_src(), want.pkts_src);
    EXPECT_EQ(v.pkts_dst(), want.pkts_dst);
    EXPECT_EQ(v.bytes_src(), want.bytes_src);
    EXPECT_EQ(v.bytes_dst(), want.bytes_dst);
    EXPECT_EQ(v.state(), want.state);
    EXPECT_EQ(v.payload_len(), want.payload_len);
    EXPECT_EQ(v.payload_view(), want.payload_view());
    EXPECT_EQ(v.failed(), want.failed());
    EXPECT_EQ(v.materialize(), want);
    bytes += want.bytes_src + want.bytes_dst;
    pkts += want.pkts_src + want.pkts_dst;
    failed += want.failed() ? 1 : 0;
  }
  // SIMD-backed reductions agree with the scalar walk exactly.
  EXPECT_EQ(batch.total_bytes(), bytes);
  EXPECT_EQ(batch.total_pkts(), pkts);
  EXPECT_EQ(batch.failed_count(), failed);
}

TEST(FlowBatch, CapacityIsASoftBound) {
  const TraceSet trace = sample_trace(10, 3);
  FlowBatch batch(4);
  for (const FlowRecord& r : trace.flows()) {
    if (batch.full()) break;
    batch.push_back(r);
  }
  EXPECT_EQ(batch.size(), 4u);
  EXPECT_TRUE(batch.full());
  batch.push_back(trace.flows()[4]);  // grows past the soft capacity
  EXPECT_EQ(batch.size(), 5u);
  EXPECT_EQ(batch.record(4), trace.flows()[4]);
}

TEST(FlowBatch, EraseRowsCompactsSurvivorsInOrder) {
  const TraceSet trace = sample_trace(10, 5);
  FlowBatch batch;
  for (const FlowRecord& r : trace.flows()) batch.push_back(r);
  batch.erase_rows({0, 3, 4, 9});
  ASSERT_EQ(batch.size(), 6u);
  const std::size_t kept[] = {1, 2, 5, 6, 7, 8};
  for (std::size_t i = 0; i < batch.size(); ++i)
    EXPECT_EQ(batch.record(i), trace.flows()[kept[i]]) << "row " << i;
}

TEST(FlowBatch, ClearedPayloadSlotsDoNotLeakIntoReusedRows) {
  FlowRecord with_payload;
  with_payload.end_time = 1.0;
  with_payload.set_payload(std::string_view("\xff\xff\xff\xff\xff\xff\xff\xff", 8));
  FlowBatch batch;
  batch.push_back(with_payload);
  batch.clear();
  const std::size_t row = batch.append_default();
  const unsigned char* slot = batch.payload(row);
  for (std::size_t b = 0; b < kPayloadPrefixLen; ++b)
    ASSERT_EQ(slot[b], 0u) << "byte " << b;
}

TEST(FlowBatch, ReductionsMatchScalarOnLargeBatch) {
  // Large enough that the AVX2 main loops (8-wide u64, 32-wide u8) run many
  // iterations plus a ragged tail.
  const TraceSet trace = sample_trace(10007, 23);
  FlowBatch batch;
  for (const FlowRecord& r : trace.flows()) batch.push_back(r);
  std::uint64_t bytes = 0, pkts = 0;
  std::size_t failed = 0;
  for (const FlowRecord& r : trace.flows()) {
    bytes += r.bytes_src + r.bytes_dst;
    pkts += r.pkts_src + r.pkts_dst;
    failed += r.failed() ? 1 : 0;
  }
  EXPECT_EQ(batch.total_bytes(), bytes);
  EXPECT_EQ(batch.total_pkts(), pkts);
  EXPECT_EQ(batch.failed_count(), failed);
}

// ---------------------------------------------------------------------------
// next_batch parity with next() on clean input.

TEST(FlowBatchReader, CsvBatchDecodeEqualsRecordDecode) {
  const TraceSet trace = sample_trace(300, 7);
  const std::string csv = csv_bytes(trace);
  const Drained rec = drain_records(csv, ErrorPolicy::strict());
  for (const std::size_t capacity : {std::size_t{1}, std::size_t{3}, std::size_t{4096}}) {
    const Drained bat = drain_batches(csv, ErrorPolicy::strict(), capacity);
    expect_drains_equal(rec, bat, ("capacity " + std::to_string(capacity)).c_str());
  }
}

TEST(FlowBatchReader, BinaryBatchDecodeEqualsRecordDecode) {
  const TraceSet trace = sample_trace(300, 11);
  const std::string bin = binary_bytes(trace);
  const Drained rec = drain_records(bin, ErrorPolicy::strict());
  ASSERT_EQ(rec.flows.size(), trace.flows().size());
  for (const std::size_t capacity : {std::size_t{1}, std::size_t{7}, std::size_t{4096}}) {
    const Drained bat = drain_batches(bin, ErrorPolicy::strict(), capacity);
    expect_drains_equal(rec, bat, ("capacity " + std::to_string(capacity)).c_str());
  }
}

TEST(FlowBatchReader, LargeCsvSpanningManyReadBuffersDecodesIdentically) {
  // > 256 KiB of CSV (TraceReader::kBufferSize), so batch refills straddle
  // several buffer reloads.
  const TraceSet trace = sample_trace(4000, 13);
  const std::string csv = csv_bytes(trace);
  ASSERT_GT(csv.size(), TraceReader::kBufferSize);
  const Drained rec = drain_records(csv, ErrorPolicy::strict());
  const Drained bat = drain_batches(csv, ErrorPolicy::strict());
  expect_drains_equal(rec, bat, "large csv");
  ASSERT_EQ(bat.flows.size(), trace.flows().size());
}

// ---------------------------------------------------------------------------
// Property test: the FaultInjector corpus decodes field-for-field the same
// batch-at-a-time as record-at-a-time, under all three error policies.

TEST(FlowBatchReader, FaultCorpusDecodesIdenticallyUnderEveryPolicy) {
  for (const std::uint64_t seed : {3u, 5u, 7u, 11u}) {
    const TraceSet trace = sample_trace(250, seed);
    FaultInjectorConfig cfg;
    cfg.seed = seed * 31 + 1;
    cfg.fault_rate = 0.2;
    cfg.crlf_rate = 0.15;
    FaultReport report;
    const std::string corrupted = FaultInjector(cfg).corrupt_csv(csv_bytes(trace), report);
    ASSERT_GT(report.fault_count(), 3u);

    const ErrorPolicy policies[] = {
        ErrorPolicy::strict(),
        ErrorPolicy::skip(),
        ErrorPolicy::stop_after(report.fault_count() / 2),
        ErrorPolicy::stop_after(report.fault_count()),
    };
    for (const ErrorPolicy& policy : policies) {
      const Drained rec = drain_records(corrupted, policy);
      for (const std::size_t capacity : {std::size_t{1}, std::size_t{5}, std::size_t{4096}}) {
        const Drained bat = drain_batches(corrupted, policy, capacity);
        expect_drains_equal(
            rec, bat,
            ("seed " + std::to_string(seed) + " capacity " + std::to_string(capacity)).c_str());
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Line-number accounting: faults on each side of the 256 KiB read-buffer
// boundary must be reported with their exact 1-based file line number, in
// both decode modes.

TEST(FlowBatchReader, LinenoExactAcrossReadBufferBoundary) {
  const TraceSet trace = sample_trace(4000, 19);
  std::string csv = csv_bytes(trace);
  ASSERT_GT(csv.size(), TraceReader::kBufferSize + (1 << 16));

  // Corrupt the first flow line starting after `offset` (length-preserving,
  // so every other line keeps its position). Returns its 1-based lineno.
  const auto corrupt_line_after = [&csv](std::size_t offset) {
    std::size_t pos = csv.find('\n', offset);
    EXPECT_NE(pos, std::string::npos);
    ++pos;  // start of the next line
    csv[pos] = 'X';  // "X28.2..." -> unparseable src address
    return static_cast<std::size_t>(1 + std::count(csv.begin(), csv.begin() + pos, '\n'));
  };
  const std::size_t lineno_before = corrupt_line_after(TraceReader::kBufferSize - 2000);
  const std::size_t lineno_after = corrupt_line_after(TraceReader::kBufferSize + 2000);
  ASSERT_LT(lineno_before, lineno_after);

  const Drained rec = drain_records(csv, ErrorPolicy::skip());
  const Drained bat = drain_batches(csv, ErrorPolicy::skip());
  expect_drains_equal(rec, bat, "boundary faults");

  EXPECT_EQ(bat.stats.records_quarantined, 2u);
  EXPECT_EQ(bat.stats.records_ok, trace.flows().size() - 2);
  // The diagnostic carries the true file line number, not a count that
  // drifted at a buffer reload.
  EXPECT_EQ(bat.stats.first_error_record, lineno_before);
  const std::string want_lineno = "line " + std::to_string(lineno_before) + ":";
  EXPECT_NE(bat.stats.first_error.find(want_lineno), std::string::npos)
      << bat.stats.first_error;

  // The second fault's lineno is exact too: drain a copy with only the
  // post-boundary corruption.
  std::string csv2 = csv_bytes(trace);
  std::size_t pos = csv2.find('\n', TraceReader::kBufferSize + 2000);
  ++pos;
  csv2[pos] = 'X';
  const Drained bat2 = drain_batches(csv2, ErrorPolicy::skip());
  EXPECT_EQ(bat2.stats.records_quarantined, 1u);
  EXPECT_EQ(bat2.stats.first_error_record, lineno_after);
}

// ---------------------------------------------------------------------------
// end_time < start_time rejection (CSV and binary).

TEST(FlowBatchReader, CsvEndBeforeStartIsRejectedWithPinnedMessage) {
  TraceSet trace = sample_trace(5, 29, /*payloads=*/false);
  {
    FlowRecord bad = trace.flows()[2];
    bad.start_time = 100.0;
    bad.end_time = 99.0;
    TraceSet rebuilt(trace.window_start(), trace.window_end());
    for (const auto& [ip, kind] : trace.truth()) rebuilt.set_truth(ip, kind);
    for (std::size_t i = 0; i < trace.flows().size(); ++i)
      rebuilt.add_flow(i == 2 ? bad : trace.flows()[i]);
    trace = std::move(rebuilt);
  }
  const std::string csv = csv_bytes(trace);
  // Header block: #window + 2 #truth + column header = 4 lines; flow 2 is
  // on line 4 + 3 = 7.
  const std::size_t bad_lineno = 7;

  const Drained strict = drain_records(csv, ErrorPolicy::strict());
  EXPECT_TRUE(strict.threw);
  EXPECT_NE(strict.error.find("end_time precedes start_time"), std::string::npos)
      << strict.error;
  EXPECT_NE(strict.error.find("line " + std::to_string(bad_lineno)), std::string::npos)
      << strict.error;

  const Drained skip = drain_records(csv, ErrorPolicy::skip());
  EXPECT_EQ(skip.stats.records_quarantined, 1u);
  EXPECT_EQ(skip.stats.records_ok, 4u);
  EXPECT_EQ(skip.stats.first_error_record, bad_lineno);
  const Drained skip_batch = drain_batches(csv, ErrorPolicy::skip());
  expect_drains_equal(skip, skip_batch, "skip policy");
}

TEST(FlowBatchReader, BinaryEndBeforeStartIsQuarantinedInPlace) {
  const TraceSet trace = sample_trace(20, 31, /*payloads=*/false);
  std::string bytes = binary_bytes(trace);
  // Payload-free v1 records are 63 bytes; with 2 truth entries the first
  // record starts at byte 50. end_time sits at offset +21 within a record.
  const std::size_t first_record = 4 + 4 + 8 + 8 + 8 + 2 * 5 + 8;
  const std::size_t record_index = 6;
  const double bad_end = trace.flows()[record_index].start_time - 1.0;
  std::memcpy(bytes.data() + first_record + record_index * 63 + 21, &bad_end, sizeof(bad_end));

  const Drained skip = drain_records(bytes, ErrorPolicy::skip());
  EXPECT_EQ(skip.stats.records_quarantined, 1u);
  EXPECT_FALSE(skip.stats.lost_sync);  // framing survives a value fault
  EXPECT_NE(skip.stats.first_error.find("end_time precedes start_time"), std::string::npos)
      << skip.stats.first_error;
  ASSERT_EQ(skip.flows.size(), trace.flows().size() - 1);
  const Drained skip_batch = drain_batches(bytes, ErrorPolicy::skip());
  expect_drains_equal(skip, skip_batch, "binary skip policy");

  const Drained strict = drain_records(bytes, ErrorPolicy::strict());
  EXPECT_TRUE(strict.threw);
  EXPECT_EQ(strict.flows.size(), record_index);  // delivered up to the fault
}

// ---------------------------------------------------------------------------
// Binary v3 (columnar blocks).

TEST(FlowBatchV3, RoundTripMatchesV1) {
  const TraceSet trace = sample_trace(300, 37);
  const std::string v1 = binary_bytes(trace);
  const std::string v3 = columnar_bytes(trace);

  // read_all sniffs the version and reproduces the identical TraceSet.
  std::stringstream in(v3);
  TraceReader reader(in);
  const TraceSet decoded = reader.read_all();
  EXPECT_EQ(decoded.flows(), trace.flows());
  EXPECT_EQ(decoded.window_start(), trace.window_start());
  EXPECT_EQ(decoded.window_end(), trace.window_end());
  EXPECT_EQ(decoded.truth().size(), trace.truth().size());

  // Both decode modes, both versions: identical flows and stats.
  const Drained v1_rec = drain_records(v1, ErrorPolicy::strict());
  const Drained v3_rec = drain_records(v3, ErrorPolicy::strict());
  const Drained v3_bat = drain_batches(v3, ErrorPolicy::strict());
  expect_drains_equal(v1_rec, v3_rec, "v3 record drain");
  expect_drains_equal(v1_rec, v3_bat, "v3 batch drain");
}

TEST(FlowBatchV3, MixedNextAndNextBatchDeliversEachRecordOnce) {
  const TraceSet trace = sample_trace(50, 41);
  std::stringstream in(columnar_bytes(trace));
  TraceReader reader(in);

  std::vector<FlowRecord> got;
  FlowRecord rec;
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(reader.next(rec));
    got.push_back(rec);
  }
  FlowBatch batch;
  while (reader.next_batch(batch) > 0)
    for (std::size_t i = 0; i < batch.size(); ++i) got.push_back(batch.record(i));
  EXPECT_FALSE(reader.next(rec));  // fully drained

  ASSERT_EQ(got.size(), trace.flows().size());
  for (std::size_t i = 0; i < got.size(); ++i)
    EXPECT_EQ(got[i], trace.flows()[i]) << "flow " << i;
}

// v3 block layout with 2 truth entries and a single block of n rows:
// preamble is 50 bytes, the u32 row count is at [50, 54), and the columns
// start at 54 in writer order (src, dst, sport, dport, proto, start, end,
// pkts_src, pkts_dst, bytes_src, bytes_dst, state, payload_len, payload).
constexpr std::size_t kV3Columns = 54;

TEST(FlowBatchV3, BadEnumByteQuarantinesOnlyThatRow) {
  const TraceSet trace = sample_trace(20, 43, /*payloads=*/false);
  std::string bytes = columnar_bytes(trace);
  const std::size_t n = trace.flows().size();
  bytes[kV3Columns + n * 12 + 5] = static_cast<char>(0xFF);  // proto of row 5

  const Drained skip = drain_batches(bytes, ErrorPolicy::skip());
  EXPECT_EQ(skip.stats.records_quarantined, 1u);
  EXPECT_FALSE(skip.stats.lost_sync);  // fixed stride: framing intact
  EXPECT_EQ(skip.stats.first_error_record, 6u);  // 1-based record ordinal
  ASSERT_EQ(skip.flows.size(), n - 1);
  for (std::size_t i = 0; i < skip.flows.size(); ++i)
    EXPECT_EQ(skip.flows[i], trace.flows()[i < 5 ? i : i + 1]) << "flow " << i;

  expect_drains_equal(drain_records(bytes, ErrorPolicy::skip()), skip, "record-mode parity");
}

TEST(FlowBatchV3, BadPayloadLenQuarantinesOnlyThatRow) {
  // Unlike v1 (where payload bytes follow the length inline, so a bad length
  // desynchronizes the stream), v3 payload slots have a fixed stride: a bad
  // length quarantines the row and the rest of the block decodes intact.
  const TraceSet trace = sample_trace(20, 47, /*payloads=*/false);
  std::string bytes = columnar_bytes(trace);
  const std::size_t n = trace.flows().size();
  bytes[kV3Columns + n * 62 + 7] = static_cast<char>(0xC8);  // payload_len of row 7 = 200

  const Drained skip = drain_batches(bytes, ErrorPolicy::skip());
  EXPECT_EQ(skip.stats.records_quarantined, 1u);
  EXPECT_FALSE(skip.stats.lost_sync);
  ASSERT_EQ(skip.flows.size(), n - 1);
  for (std::size_t i = 0; i < skip.flows.size(); ++i)
    EXPECT_EQ(skip.flows[i], trace.flows()[i < 7 ? i : i + 1]) << "flow " << i;
}

TEST(FlowBatchV3, StrictValueFaultDiscardsTheWholeBlock) {
  // v3 is block-granular under a thrown fault: rows decoded before the bad
  // row are discarded with it, so a strict reader never delivers a partial
  // block (the stream is unusable from the first fault on anyway).
  const TraceSet trace = sample_trace(20, 53, /*payloads=*/false);
  std::string bytes = columnar_bytes(trace);
  const std::size_t n = trace.flows().size();
  bytes[kV3Columns + n * 12 + 5] = static_cast<char>(0xFF);  // proto of row 5

  const Drained strict = drain_batches(bytes, ErrorPolicy::strict());
  EXPECT_TRUE(strict.threw);
  EXPECT_TRUE(strict.flows.empty());
  expect_drains_equal(drain_records(bytes, ErrorPolicy::strict()), strict, "record parity");
}

TEST(FlowBatchV3, BadBlockSizeLosesSync) {
  const TraceSet trace = sample_trace(20, 59, /*payloads=*/false);
  std::string bytes = columnar_bytes(trace);
  const std::uint32_t huge = 1u << 30;
  std::memcpy(bytes.data() + 50, &huge, sizeof(huge));

  const Drained skip = drain_batches(bytes, ErrorPolicy::skip());
  EXPECT_TRUE(skip.stats.lost_sync);
  EXPECT_EQ(skip.stats.records_quarantined, 1u);
  EXPECT_TRUE(skip.flows.empty());
  EXPECT_NE(skip.stats.first_error.find("bad block size"), std::string::npos)
      << skip.stats.first_error;

  const Drained strict = drain_batches(bytes, ErrorPolicy::strict());
  EXPECT_TRUE(strict.threw);
}

TEST(FlowBatchV3, TruncatedColumnLosesSync) {
  const TraceSet trace = sample_trace(20, 61, /*payloads=*/false);
  const std::string whole = columnar_bytes(trace);
  const std::string truncated = whole.substr(0, kV3Columns + 100);  // mid-column

  const Drained skip = drain_batches(truncated, ErrorPolicy::skip());
  EXPECT_TRUE(skip.stats.lost_sync);
  EXPECT_EQ(skip.stats.records_quarantined, 1u);
  EXPECT_TRUE(skip.flows.empty());

  const Drained strict = drain_batches(truncated, ErrorPolicy::strict());
  EXPECT_TRUE(strict.threw);
}

TEST(FlowBatchV3, FullyQuarantinedBlockIsNotEndOfStream) {
  // Corrupt every row of the (single) block except none — i.e. all rows —
  // then append a second block by writing a two-block trace: the reader
  // must skip the dead block and deliver the next one.
  const TraceSet trace = sample_trace(20, 67, /*payloads=*/false);
  // Build a two-block stream by hand: write two single-block traces and
  // splice the second trace's block after the first, fixing the flow count.
  std::string a = columnar_bytes(trace);
  const std::string b = columnar_bytes(trace);
  const std::string second_block = b.substr(50);
  a += second_block;
  const std::uint64_t total = 2 * trace.flows().size();
  std::memcpy(a.data() + 42, &total, sizeof(total));  // flow_count in the preamble
  // Kill every row of block one via its proto column.
  const std::size_t n = trace.flows().size();
  for (std::size_t i = 0; i < n; ++i) a[kV3Columns + n * 12 + i] = static_cast<char>(0xFF);

  const Drained skip = drain_batches(a, ErrorPolicy::skip());
  EXPECT_EQ(skip.stats.records_quarantined, n);
  EXPECT_EQ(skip.stats.resync_events, 1u);  // one maximal bad run
  ASSERT_EQ(skip.flows.size(), n);
  for (std::size_t i = 0; i < n; ++i)
    EXPECT_EQ(skip.flows[i], trace.flows()[i]) << "flow " << i;

  expect_drains_equal(drain_records(a, ErrorPolicy::skip()), skip, "record parity");
}

// ---------------------------------------------------------------------------
// Columnar feature extraction matches the AoS extractor.

TEST(FlowBatchFeatures, BatchAndReaderExtractorsMatchAoS) {
  const TraceSet trace = sample_trace(500, 71);
  detect::FeatureExtractorConfig fx;
  fx.is_internal = detect::default_internal_predicate;
  const detect::FeatureMap want = detect::extract_features(trace, fx);

  std::vector<FlowBatch> batches;
  batches.emplace_back(64);
  for (const FlowRecord& r : trace.flows()) {
    if (batches.back().full()) batches.emplace_back(64);
    batches.back().push_back(r);
  }
  const detect::FeatureMap from_batches = detect::extract_features(batches, fx);

  std::stringstream in(columnar_bytes(trace));
  TraceReader reader(in);
  const detect::FeatureMap from_reader = detect::extract_features(reader, fx);

  const auto expect_equal = [&](const detect::FeatureMap& got, const char* what) {
    SCOPED_TRACE(what);
    ASSERT_EQ(got.size(), want.size());
    for (const auto& [host, fw] : want) {
      ASSERT_TRUE(got.contains(host)) << host.to_string();
      const detect::HostFeatures& fg = got.at(host);
      EXPECT_EQ(fg.flows_initiated, fw.flows_initiated);
      EXPECT_EQ(fg.flows_failed, fw.flows_failed);
      EXPECT_EQ(fg.flows_received, fw.flows_received);
      EXPECT_EQ(fg.bytes_sent_initiated, fw.bytes_sent_initiated);
      EXPECT_EQ(fg.bytes_sent_received, fw.bytes_sent_received);
      EXPECT_EQ(fg.distinct_dsts, fw.distinct_dsts);
      EXPECT_EQ(fg.dsts_after_first_hour, fw.dsts_after_first_hour);
      EXPECT_DOUBLE_EQ(fg.first_activity, fw.first_activity);
      std::vector<double> ga = fg.interstitials, gb = fw.interstitials;
      std::sort(ga.begin(), ga.end());
      std::sort(gb.begin(), gb.end());
      EXPECT_EQ(ga, gb) << host.to_string();
    }
  };
  expect_equal(from_batches, "span overload");
  expect_equal(from_reader, "reader overload");
}

}  // namespace
}  // namespace tradeplot::netflow
