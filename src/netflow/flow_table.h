// Packet-to-flow assembly: the Argus-equivalent front end.
//
// FlowTable consumes a time-ordered stream of PacketEvents and groups packets
// of the same (canonical) 5-tuple into bi-directional FlowRecords, exactly as
// the paper's Argus deployment does. Flows are closed on TCP FIN/RST, on an
// idle timeout, or when flush() is called at the end of the trace window.
//
// The campus simulator normally emits FlowRecords directly for speed; this
// class exists so the packet path is a first-class, tested substrate (see
// tests/netflow_flow_table_test.cpp and examples/quickstart.cpp), and so the
// library can ingest real packet logs.
#pragma once

#include <cstdint>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "netflow/flow_key.h"
#include "netflow/flow_record.h"

namespace tradeplot::netflow {

/// TCP header flags (subset relevant to flow-state tracking).
struct TcpFlags {
  bool syn = false;
  bool ack = false;
  bool fin = false;
  bool rst = false;
};

struct PacketEvent {
  double time = 0.0;
  simnet::Ipv4 src;
  simnet::Ipv4 dst;
  std::uint16_t sport = 0;
  std::uint16_t dport = 0;
  Protocol proto = Protocol::kUdp;
  std::uint32_t payload_bytes = 0;
  TcpFlags tcp;                    // ignored for UDP/ICMP
  std::string_view payload = {};   // optional leading payload (prefix capture)
};

struct FlowTableConfig {
  double idle_timeout = 60.0;   // close a flow after this much silence
  double active_timeout = 0.0;  // 0 = unlimited; otherwise split long flows
};

class FlowTable {
 public:
  explicit FlowTable(FlowTableConfig config = {});

  /// Feeds one packet. Packets must be fed in non-decreasing time order;
  /// throws util::Error otherwise. May close (and emit) idle flows first.
  void add_packet(const PacketEvent& pkt);

  /// Closes everything still open and returns all completed records,
  /// ordered by flow start time. The table is left empty.
  [[nodiscard]] std::vector<FlowRecord> flush();

  /// Records completed so far (moves them out; emitted order = close order).
  [[nodiscard]] std::vector<FlowRecord> take_completed();

  [[nodiscard]] std::size_t open_flows() const { return open_.size(); }

 private:
  struct OpenFlow {
    FlowRecord rec;
    bool initiator_is_a = true;  // does rec.src correspond to key.ip_a?
    bool saw_syn = false;
    bool saw_synack = false;
    bool saw_rst = false;
    bool saw_fin_src = false;
    bool saw_fin_dst = false;
    double last_packet = 0.0;
  };

  void expire_idle(double now);
  void close_flow(const FlowKey& key);
  void finalize(OpenFlow& f);

  FlowTableConfig config_;
  double last_time_ = 0.0;
  std::unordered_map<FlowKey, OpenFlow, FlowKeyHash> open_;
  std::vector<FlowRecord> completed_;
};

}  // namespace tradeplot::netflow
