#include "svc/net.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "util/error.h"
#include "util/interrupt.h"

namespace tradeplot::svc {

namespace {

[[noreturn]] void throw_errno(const std::string& what) {
  throw util::IoError(what + ": " + std::strerror(errno));
}

sockaddr_un unix_addr(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path))
    throw util::ConfigError("unix socket path too long: " + path);
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  return addr;
}

sockaddr_in tcp_addr(const Endpoint& ep) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(ep.port);
  const std::string host = ep.host.empty() ? "127.0.0.1" : ep.host;
  if (inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1)
    throw util::ConfigError("not an IPv4 address: " + host);
  return addr;
}

}  // namespace

void Fd::reset(int fd) {
  if (fd_ >= 0) {
    // EINTR on close is not retried: POSIX leaves the fd state unspecified
    // and Linux guarantees it is released either way.
    ::close(fd_);
  }
  fd_ = fd;
}

Endpoint Endpoint::parse(const std::string& spec) {
  Endpoint ep;
  std::string rest = spec;
  if (rest.rfind("unix:", 0) == 0) {
    ep.kind = Kind::kUnix;
    ep.path = rest.substr(5);
    if (ep.path.empty()) throw util::ConfigError("empty unix socket path: " + spec);
    return ep;
  }
  if (rest.rfind("tcp:", 0) == 0) rest = rest.substr(4);
  const std::size_t colon = rest.rfind(':');
  if (colon == std::string::npos)
    throw util::ConfigError("endpoint needs HOST:PORT or unix:PATH: " + spec);
  ep.kind = Kind::kTcp;
  ep.host = rest.substr(0, colon);
  const std::string port_str = rest.substr(colon + 1);
  if (port_str.empty() || port_str.find_first_not_of("0123456789") != std::string::npos)
    throw util::ConfigError("bad port in endpoint: " + spec);
  const unsigned long port = std::stoul(port_str);
  if (port > 65535) throw util::ConfigError("port out of range: " + spec);
  ep.port = static_cast<std::uint16_t>(port);
  return ep;
}

std::string Endpoint::to_string() const {
  if (kind == Kind::kUnix) return "unix:" + path;
  return "tcp:" + (host.empty() ? std::string("127.0.0.1") : host) + ":" +
         std::to_string(port);
}

Fd listen_on(const Endpoint& ep, int backlog, std::uint16_t* bound_port) {
  if (ep.kind == Endpoint::Kind::kUnix) {
    Fd fd(::socket(AF_UNIX, SOCK_STREAM, 0));
    if (!fd.valid()) throw_errno("socket(unix)");
    ::unlink(ep.path.c_str());  // stale socket from a previous run
    const sockaddr_un addr = unix_addr(ep.path);
    if (::bind(fd.get(), reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0)
      throw_errno("bind " + ep.to_string());
    if (::listen(fd.get(), backlog) != 0) throw_errno("listen " + ep.to_string());
    if (bound_port) *bound_port = 0;
    return fd;
  }

  Fd fd(::socket(AF_INET, SOCK_STREAM, 0));
  if (!fd.valid()) throw_errno("socket(tcp)");
  const int one = 1;
  ::setsockopt(fd.get(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr = tcp_addr(ep);
  if (::bind(fd.get(), reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0)
    throw_errno("bind " + ep.to_string());
  if (::listen(fd.get(), backlog) != 0) throw_errno("listen " + ep.to_string());
  if (bound_port) {
    sockaddr_in actual{};
    socklen_t len = sizeof(actual);
    if (::getsockname(fd.get(), reinterpret_cast<sockaddr*>(&actual), &len) != 0)
      throw_errno("getsockname");
    *bound_port = ntohs(actual.sin_port);
  }
  return fd;
}

Fd connect_to(const Endpoint& ep) {
  if (ep.kind == Endpoint::Kind::kUnix) {
    Fd fd(::socket(AF_UNIX, SOCK_STREAM, 0));
    if (!fd.valid()) throw_errno("socket(unix)");
    const sockaddr_un addr = unix_addr(ep.path);
    for (;;) {
      if (::connect(fd.get(), reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) == 0)
        return fd;
      if (errno != EINTR || util::shutdown_requested())
        throw_errno("connect " + ep.to_string());
    }
  }

  Fd fd(::socket(AF_INET, SOCK_STREAM, 0));
  if (!fd.valid()) throw_errno("socket(tcp)");
  const sockaddr_in addr = tcp_addr(ep);
  for (;;) {
    if (::connect(fd.get(), reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) == 0)
      return fd;
    if (errno != EINTR || util::shutdown_requested())
      throw_errno("connect " + ep.to_string());
  }
}

bool wait_readable(int fd, int timeout_ms) {
  pollfd pfd{};
  pfd.fd = fd;
  pfd.events = POLLIN;
  for (;;) {
    const int rc = ::poll(&pfd, 1, timeout_ms);
    if (rc > 0) return true;  // readable, or POLLERR/POLLHUP the read reports
    if (rc == 0) return false;
    if (errno != EINTR) throw_errno("poll");
    if (util::shutdown_requested()) return false;
    // Interrupted: retry with the original timeout. The worst case (signal
    // storms stretching the wait) is acceptable for idle-disconnect
    // purposes; callers re-check deadlines against their Clock anyway.
  }
}

Fd accept_conn(int listen_fd) {
  for (;;) {
    const int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd >= 0) return Fd(fd);
    if (errno == EINTR) {
      if (util::shutdown_requested()) return Fd();
      continue;
    }
    if (errno == ECONNABORTED || errno == EAGAIN || errno == EWOULDBLOCK) return Fd();
    throw_errno("accept");
  }
}

std::size_t recv_some(int fd, char* dst, std::size_t n) {
  for (;;) {
    const ssize_t got = ::recv(fd, dst, n, 0);
    if (got > 0) return static_cast<std::size_t>(got);
    if (got == 0) return 0;  // orderly peer shutdown
    if (errno == EINTR) {
      if (util::shutdown_requested()) return 0;
      continue;
    }
    if (errno == ECONNRESET) return 0;  // vanished peer == departed peer
    throw_errno("recv");
  }
}

bool send_all(int fd, const char* data, std::size_t n) {
  while (n > 0) {
    // MSG_NOSIGNAL: a dead peer must surface as EPIPE here, not SIGPIPE
    // (the daemon also ignores SIGPIPE, but clients may not install
    // handlers).
    const ssize_t sent = ::send(fd, data, n, MSG_NOSIGNAL);
    if (sent > 0) {
      data += sent;
      n -= static_cast<std::size_t>(sent);
      continue;
    }
    if (errno == EINTR) {
      if (util::shutdown_requested()) return false;
      continue;
    }
    if (errno == EPIPE || errno == ECONNRESET) return false;
    throw_errno("send");
  }
  return true;
}

}  // namespace tradeplot::svc
