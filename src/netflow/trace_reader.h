// Streaming, pull-based ingestion of flow traces.
//
// TraceReader is the high-throughput counterpart to io.h's batch readers: it
// opens a CSV or binary trace (auto-detecting the format by content unless
// told otherwise), reads the preamble (window + ground-truth entries for the
// binary format, everything up to the header row for CSV), and then yields
// one FlowRecord per next() call. Memory use is bounded by one internal read
// buffer (kBufferSize) regardless of trace size, so a border monitor can feed
// detect::StreamingDetector from a multi-gigabyte trace without ever
// materializing a TraceSet.
//
// The reader is zero-copy on the hot path: input is pulled from the stream in
// large blocks, CSV lines are tokenized as std::string_view slices of the
// block, and numeric fields are decoded with std::from_chars (locale-free,
// range-checked). io.h's read_csv/read_binary are thin wrappers over
// TraceReader::read_all().
#pragma once

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <string>
#include <unordered_map>

#include "netflow/flow_batch.h"
#include "netflow/trace_set.h"

namespace tradeplot::netflow {

enum class TraceFormat { kCsv, kBinary };

[[nodiscard]] std::string_view to_string(TraceFormat f);

/// What TraceReader does when one record is malformed.
///
/// The policy governs *record-level* faults only: a bad flow line, a bad
/// mid-stream "#truth" comment, a binary record with an invalid enum byte.
/// Structural faults — a missing CSV header, a bad magic/version, a
/// malformed preamble — are always fatal, because there is no boundary to
/// resync to before the record stream even starts.
enum class OnError : std::uint8_t {
  kStrict,     // throw on the first malformed record (the historical default)
  kSkip,       // quarantine the record, resync to the next boundary, continue
  kStopAfter,  // behave like kSkip for up to max_quarantined records, then throw
};

struct ErrorPolicy {
  OnError action = OnError::kStrict;
  /// For kStopAfter: the number of quarantined records tolerated before the
  /// next fault is rethrown. Ignored by the other actions.
  std::size_t max_quarantined = 0;

  [[nodiscard]] static ErrorPolicy strict() { return {}; }
  [[nodiscard]] static ErrorPolicy skip() { return {OnError::kSkip, 0}; }
  [[nodiscard]] static ErrorPolicy stop_after(std::size_t n) {
    return {OnError::kStopAfter, n};
  }
};

/// Ingestion health report, accumulated while records are pulled. Under
/// ErrorPolicy::strict() the quarantine counters stay zero (the first fault
/// throws instead).
struct IngestStats {
  std::size_t records_ok = 0;           // flows decoded successfully
  std::size_t records_quarantined = 0;  // malformed records skipped
  /// Recovery runs: incremented once per maximal run of consecutive bad
  /// records (a burst of 5 garbled lines is 1 resync event, 5 quarantines).
  std::size_t resync_events = 0;
  /// True when a binary stream lost record framing (bad payload length or a
  /// mid-record truncation) and the reader abandoned the remainder; the
  /// stream then ends early instead of throwing under kSkip.
  bool lost_sync = false;
  /// Diagnostics of the first quarantined record (empty when none).
  std::string first_error;
  /// CSV line number / 1-based binary record ordinal of the first fault.
  std::size_t first_error_record = 0;
};

class TraceReader {
 public:
  /// Size of the internal read buffer; the reader's memory bound. (A buffer
  /// holds whole CSV lines, so it grows only for pathological inputs whose
  /// single line exceeds this.)
  static constexpr std::size_t kBufferSize = 1 << 18;  // 256 KiB

  /// Opens a trace on a caller-owned stream, auto-detecting the format: a
  /// stream starting with the binary magic is binary, anything else is CSV.
  /// Reads the preamble eagerly; throws util::ParseError / util::IoError on
  /// malformed input, exactly as the batch readers do.
  explicit TraceReader(std::istream& in);

  /// Same, but with the format forced (no sniffing); a mismatched stream
  /// fails with the corresponding format's parse error.
  TraceReader(std::istream& in, TraceFormat format);

  /// Opens a trace file (auto-detect / forced format). Throws util::IoError
  /// if the file cannot be opened.
  explicit TraceReader(const std::string& path);
  TraceReader(const std::string& path, TraceFormat format);

  /// Same constructors with an explicit error policy. Preamble parsing is
  /// always strict (see OnError); the policy takes effect from the first
  /// record onward.
  TraceReader(std::istream& in, ErrorPolicy policy);
  TraceReader(std::istream& in, TraceFormat format, ErrorPolicy policy);
  TraceReader(const std::string& path, ErrorPolicy policy);
  TraceReader(const std::string& path, TraceFormat format, ErrorPolicy policy);

  ~TraceReader();
  TraceReader(const TraceReader&) = delete;
  TraceReader& operator=(const TraceReader&) = delete;

  [[nodiscard]] TraceFormat format() const { return format_; }
  [[nodiscard]] double window_start() const { return window_start_; }
  [[nodiscard]] double window_end() const { return window_end_; }

  /// Ground-truth entries seen so far. For binary traces this is complete
  /// after construction; CSV traces normally carry truth in the preamble,
  /// but "#truth" lines are legal anywhere, so entries can still be added
  /// while flows are being pulled.
  [[nodiscard]] const std::unordered_map<simnet::Ipv4, HostKind>& truth() const { return truth_; }

  /// Flows yielded so far.
  [[nodiscard]] std::size_t flows_read() const { return flows_read_; }

  /// For binary traces, the total flow count declared in the header; 0 for
  /// CSV (whose length is unknown until EOF).
  [[nodiscard]] std::uint64_t declared_flow_count() const { return flow_count_; }

  [[nodiscard]] const ErrorPolicy& error_policy() const { return policy_; }

  /// Ingestion health counters accumulated so far (quarantined records,
  /// resync events, first-fault diagnostics). Always valid; under
  /// ErrorPolicy::strict() only records_ok ever moves.
  [[nodiscard]] const IngestStats& ingest_stats() const { return stats_; }

  /// Reads the next flow into `out`. Returns false at clean end-of-trace;
  /// throws util::ParseError / util::IoError on malformed or truncated
  /// input per the error policy (under kSkip malformed records are
  /// quarantined into ingest_stats() instead of thrown). After false is
  /// returned, further calls keep returning false.
  [[nodiscard]] bool next(FlowRecord& out);

  /// Reads the next batch of flows into `out` (cleared first), decoding
  /// straight into the columns: up to out.capacity() rows for CSV / binary
  /// v1, one column block for binary v3 (delivered whole even when larger
  /// than the batch). Returns the number of rows decoded; 0 at clean
  /// end-of-trace (and on every later call).
  ///
  /// Accounting is record-granular and identical to pulling the same trace
  /// through next(): lineno_/ordinal bookkeeping, IngestStats counters,
  /// resync runs and kStopAfter budgets all advance per record, so a trace
  /// read in batches yields the same flows and the same ingest_stats() as a
  /// record-at-a-time read for every batch capacity. On a thrown fault
  /// (kStrict / exhausted kStopAfter) the batch retains the rows decoded
  /// before the fault for CSV and binary v1 — already counted in
  /// ingest_stats() — so a caller can still ingest them before handling the
  /// error; a binary v3 block that throws mid-validation is discarded whole
  /// (block-granular format, same as the record-mode view of it).
  ///
  /// next() and next_batch() may be freely mixed; each record is delivered
  /// exactly once.
  std::size_t next_batch(FlowBatch& out);

  /// Pulls and discards up to `n` flows (honoring the error policy);
  /// returns how many were discarded. Used to fast-forward a trace when
  /// resuming a checkpointed monitor.
  std::size_t skip_flows(std::size_t n);

  /// Drains the remaining flows (plus window and truth) into a TraceSet —
  /// the batch entry points read_csv/read_binary are implemented with this.
  ///
  /// Unlike next(), this is allowed to materialize the remaining input, so
  /// the CSV drain decodes flow lines in parallel over the shared pool
  /// (thread count per util::resolve_threads / TRADEPLOT_THREADS). Each line
  /// parses into its own pre-sized slot, so the resulting TraceSet is
  /// bit-identical to the serial read for every thread count, and the
  /// earliest malformed line wins when reporting errors, exactly as a
  /// sequential pass would.
  [[nodiscard]] TraceSet read_all();

 private:
  class Source;  // buffered block reader (defined in trace_reader.cpp)

  void open(std::istream& in, const TraceFormat* forced);
  void read_csv_preamble();
  void read_binary_preamble();
  void parse_csv_comment(std::string_view line);
  void read_all_csv(TraceSet& trace);
  [[nodiscard]] bool next_csv(FlowRecord& out);
  [[nodiscard]] bool next_binary(FlowRecord& out);
  /// Record-mode view of a binary v3 trace: serves rows out of staged_,
  /// refilling it one column block at a time.
  [[nodiscard]] bool next_columnar(FlowRecord& out);
  void next_batch_csv(FlowBatch& out);
  void next_batch_binary(FlowBatch& out);
  void next_batch_columnar(FlowBatch& out);
  /// Reads and validates one binary v3 column block into `out` (must be
  /// empty); quarantined rows are compacted away. Returns false when no
  /// block remains (declared count reached or sync lost).
  bool read_columnar_block(FlowBatch& out);
  /// Routes one malformed record through the policy: records it in stats_
  /// and returns (to resume scanning) or rethrows. `record` is the CSV line
  /// number / 1-based binary record ordinal.
  void quarantine(std::size_t record);

  std::unique_ptr<std::istream> owned_stream_;  // set by the path ctors
  std::unique_ptr<Source> src_;

  TraceFormat format_ = TraceFormat::kCsv;
  double window_start_ = 0.0;
  double window_end_ = 0.0;
  std::unordered_map<simnet::Ipv4, HostKind> truth_;

  std::uint64_t flow_count_ = 0;  // binary only
  std::uint32_t bin_version_ = 0;  // binary only: 1 (record) or 3 (columnar)
  std::size_t flows_read_ = 0;
  /// Binary records consumed from the stream, including quarantined ones —
  /// the cursor checked against the declared flow_count_ (flows_read_ only
  /// counts records actually yielded).
  std::uint64_t records_consumed_ = 0;
  std::size_t lineno_ = 0;  // CSV only
  bool done_ = false;

  ErrorPolicy policy_{};
  IngestStats stats_{};
  bool in_bad_run_ = false;  // tracks resync_events (runs of quarantines)

  /// Binary v3 record-mode staging: the current column block, with the next
  /// row next() will serve. Unused (null) for CSV / binary v1.
  std::unique_ptr<FlowBatch> staged_;
  std::size_t staged_pos_ = 0;
};

}  // namespace tradeplot::netflow
