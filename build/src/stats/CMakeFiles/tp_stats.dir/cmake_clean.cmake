file(REMOVE_RECURSE
  "CMakeFiles/tp_stats.dir/descriptive.cpp.o"
  "CMakeFiles/tp_stats.dir/descriptive.cpp.o.d"
  "CMakeFiles/tp_stats.dir/emd.cpp.o"
  "CMakeFiles/tp_stats.dir/emd.cpp.o.d"
  "CMakeFiles/tp_stats.dir/hcluster.cpp.o"
  "CMakeFiles/tp_stats.dir/hcluster.cpp.o.d"
  "CMakeFiles/tp_stats.dir/histogram.cpp.o"
  "CMakeFiles/tp_stats.dir/histogram.cpp.o.d"
  "CMakeFiles/tp_stats.dir/roc.cpp.o"
  "CMakeFiles/tp_stats.dir/roc.cpp.o.d"
  "libtp_stats.a"
  "libtp_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tp_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
