# Empty dependencies file for fig11_evasion_thresholds.
# This may be replaced when dependencies are built.
