// Ablation: Freedman-Diaconis (data-dependent) histogram bin width versus
// fixed widths in θ_hm.
//
// The paper picks FD both for statistical quality (min L2 error vs the true
// density) and because "applying a fixed bin width makes it straightforward
// for a Plotter to manipulate its traffic to evade detection."
#include "bench/bench_util.h"

using namespace tradeplot;

int main() {
  benchx::header("Ablation - theta_hm histogram bin width (FD vs fixed)");

  eval::EvalConfig cfg = benchx::paper_eval_config();
  cfg.days = 4;
  std::printf("  generating %d days...\n\n", cfg.days);
  const eval::DaySet days = eval::make_days(cfg);

  const struct {
    double width;  // 0 = FD
    const char* name;
  } variants[] = {
      {0.0, "Freedman-Diaconis (paper)"},
      {1.0, "fixed 1 s"},
      {10.0, "fixed 10 s"},
      {60.0, "fixed 60 s"},
      {600.0, "fixed 600 s"},
  };

  std::printf("  %-28s %10s %12s %10s\n", "bin width", "Storm TP", "Nugache TP", "FP");
  for (const auto& variant : variants) {
    detect::FindPlottersConfig pipeline;
    pipeline.human_machine.fixed_bin_width = variant.width;
    const benchx::MergedRates avg =
        benchx::merged_rates(days, [&](const eval::DayData& day) {
          const auto run = detect::find_plotters(day.features, pipeline);
          return std::pair{run.plotters, run.input};
        });
    std::printf("  %-28s %9.1f%% %11.1f%% %9.1f%%\n", variant.name, avg.storm_tp * 100,
                avg.nugache_tp * 100, avg.fp * 100);
  }

  benchx::paper_reference(
      "DESIGN.md ablation (paper §IV-C rationale): FD adapts the binning\n"
      "to each host's sample size and spread, and - the security argument -\n"
      "is data-dependent, so a bot cannot precompute the binning it must\n"
      "defeat. Accuracy-wise FD and moderate fixed widths are comparable\n"
      "here; very coarse bins (>= the bots' timer period x several) smear\n"
      "the comb into the human mass and lose Storm TP.");
  return 0;
}
