#include "netflow/trace_set.h"

#include <algorithm>

namespace tradeplot::netflow {

std::string_view to_string(HostKind kind) {
  switch (kind) {
    case HostKind::kUnknown: return "unknown";
    case HostKind::kWebClient: return "web-client";
    case HostKind::kWebServer: return "web-server";
    case HostKind::kMailServer: return "mail-server";
    case HostKind::kDnsClient: return "dns-client";
    case HostKind::kNtpClient: return "ntp-client";
    case HostKind::kScanner: return "scanner";
    case HostKind::kIdle: return "idle";
    case HostKind::kGnutella: return "gnutella";
    case HostKind::kEMule: return "emule";
    case HostKind::kBitTorrent: return "bittorrent";
    case HostKind::kStorm: return "storm";
    case HostKind::kNugache: return "nugache";
  }
  return "?";
}

std::string_view to_string(HostClass cls) {
  switch (cls) {
    case HostClass::kBackground: return "background";
    case HostClass::kTrader: return "trader";
    case HostClass::kPlotter: return "plotter";
  }
  return "?";
}

HostClass host_class(HostKind kind) {
  switch (kind) {
    case HostKind::kGnutella:
    case HostKind::kEMule:
    case HostKind::kBitTorrent:
      return HostClass::kTrader;
    case HostKind::kStorm:
    case HostKind::kNugache:
      return HostClass::kPlotter;
    default:
      return HostClass::kBackground;
  }
}

HostKind TraceSet::kind_of(simnet::Ipv4 host) const {
  const auto it = truth_.find(host);
  return it == truth_.end() ? HostKind::kUnknown : it->second;
}

std::vector<simnet::Ipv4> TraceSet::hosts_of_kind(HostKind kind) const {
  std::vector<simnet::Ipv4> out;
  for (const auto& [ip, k] : truth_)
    if (k == kind) out.push_back(ip);
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<simnet::Ipv4> TraceSet::hosts_of_class(HostClass cls) const {
  std::vector<simnet::Ipv4> out;
  for (const auto& [ip, k] : truth_)
    if (host_class(k) == cls) out.push_back(ip);
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<simnet::Ipv4> TraceSet::initiators() const {
  std::vector<simnet::Ipv4> out;
  out.reserve(flows_.size());
  for (const FlowRecord& rec : flows_) out.push_back(rec.src);
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

void TraceSet::sort_by_time() {
  std::stable_sort(flows_.begin(), flows_.end(), [](const FlowRecord& a, const FlowRecord& b) {
    return a.start_time < b.start_time;
  });
}

void TraceSet::merge(const TraceSet& other) {
  flows_.insert(flows_.end(), other.flows_.begin(), other.flows_.end());
  for (const auto& [ip, kind] : other.truth_) truth_[ip] = kind;
  if (other.window_start_ < window_start_) window_start_ = other.window_start_;
  if (other.window_end_ > window_end_) window_end_ = other.window_end_;
}

}  // namespace tradeplot::netflow
