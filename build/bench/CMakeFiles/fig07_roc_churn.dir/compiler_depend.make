# Empty compiler generated dependencies file for fig07_roc_churn.
# This may be replaced when dependencies are built.
