// Streaming detection: FindPlotters as an online monitor.
//
// The paper's vantage point is a border monitor ingesting flow records
// continuously. StreamingDetector accepts flows one at a time (in rough
// time order), maintains per-host state incrementally, and emits a full
// FindPlotters result at each detection-window boundary (the paper's
// window D, one day by default), then rolls the window forward.
//
// Memory is bounded by the number of active hosts per window: all per-host
// state is dropped when the window rolls. Flow ingestion is O(1) amortised
// per flow; the per-window detection pass runs the regular pipeline.
#pragma once

#include <functional>
#include <vector>

#include "detect/features.h"
#include "detect/find_plotters.h"

namespace tradeplot::detect {

struct StreamingConfig {
  /// Detection window length D (seconds). Results fire at each boundary.
  double window = 6 * 3600.0;
  /// Predicate for internal hosts (required).
  std::function<bool(simnet::Ipv4)> is_internal;
  /// Churn grace period within the window (paper: first hour of activity).
  double new_ip_grace = 3600.0;
  /// Pipeline thresholds.
  FindPlottersConfig pipeline{};
};

struct WindowVerdict {
  std::size_t window_index = 0;
  double window_start = 0.0;
  double window_end = 0.0;
  std::size_t flows_seen = 0;
  FindPlottersResult result;
};

class StreamingDetector {
 public:
  using VerdictSink = std::function<void(const WindowVerdict&)>;

  /// Throws util::ConfigError if the config lacks is_internal or has a
  /// non-positive window.
  StreamingDetector(StreamingConfig config, VerdictSink sink);

  /// Ingests one flow. Flows may arrive slightly out of order *within* a
  /// window; a flow stamped before the current window start is counted
  /// into the current window (late arrival) rather than rejected. A flow
  /// past the current window boundary first closes the window (emitting a
  /// verdict) — possibly several empty windows in a row for long gaps.
  void ingest(const netflow::FlowRecord& flow);

  /// Closes the current window and emits its verdict (e.g. at shutdown).
  void flush();

  [[nodiscard]] std::size_t windows_emitted() const { return windows_emitted_; }
  [[nodiscard]] std::size_t flows_in_current_window() const { return flows_in_window_; }
  [[nodiscard]] double current_window_start() const { return window_start_; }

 private:
  void roll_to(double time);
  void emit();

  StreamingConfig config_;
  VerdictSink sink_;

  // Incremental per-host accumulation for the current window. Mirrors
  // extract_features(), but built flow by flow.
  struct HostState {
    HostFeatures features;
    std::unordered_map<simnet::Ipv4, double> last_contact;   // dst -> last start
    std::unordered_map<simnet::Ipv4, double> first_contact;  // dst -> first start
    bool seen = false;
  };
  std::unordered_map<simnet::Ipv4, HostState> hosts_;

  double window_start_ = 0.0;
  bool window_open_ = false;
  std::size_t flows_in_window_ = 0;
  std::size_t windows_emitted_ = 0;
};

}  // namespace tradeplot::detect
