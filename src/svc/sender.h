// FrameSender: the client half of the monitor daemon's frame protocol.
//
// stream() pushes a whole trace file to one tenant, surviving daemon
// restarts: every (re)connect starts with Hello, and the HelloAck carries
// the tenant's accepted-row cursor, so the sender reopens the trace,
// fast-forwards to the cursor, and resumes exactly where the daemon's books
// say it should — after a kill -9 that is the last checkpoint, and the
// flows since then are simply sent again. Reconnects back off
// exponentially through the injected Clock, so tests assert the exact
// schedule on a SimulatedClock without waiting.
#pragma once

#include <cstdint>
#include <string>

#include "svc/frame.h"
#include "svc/net.h"
#include "util/clock.h"

namespace tradeplot::svc {

struct SenderOptions {
  std::string endpoint;              // Endpoint::parse spec
  std::string tenant;                // target universe
  std::size_t rows_per_frame = 4096; // flows per kFlows frame
  int max_attempts = 8;              // consecutive failed connects before giving up
  double backoff_initial = 0.05;     // seconds; doubles per consecutive failure
  double backoff_max = 2.0;          // backoff ceiling
  double ack_timeout = 10.0;         // seconds to wait for HelloAck / FlushAck
};

struct SendReport {
  std::uint64_t rows_sent = 0;      // rows pushed over the wire (incl. re-sends)
  std::uint64_t frames_sent = 0;    // kFlows frames
  std::uint64_t reconnects = 0;     // successful connects after the first
  // Final accounting from the daemon's FlushAck.
  std::uint64_t accepted = 0;
  std::uint64_t ingested = 0;
  std::uint64_t shed = 0;
  std::uint64_t quarantined = 0;
};

class FrameSender {
 public:
  explicit FrameSender(SenderOptions options, util::Clock& clock = util::Clock::system());

  /// Streams the trace at `path` (any TraceReader format) to the tenant:
  /// connect, Hello/HelloAck, fast-forward to the acked cursor, send kFlows
  /// frames (v3 columnar payloads), finish with kFlush and return the
  /// daemon's accounting. A dropped connection reconnects with exponential
  /// backoff and rewinds to the fresh cursor. Throws util::IoError when
  /// max_attempts consecutive connect/handshake failures exhaust the retry
  /// budget, and util::Error for protocol-level rejections (unknown
  /// tenant).
  SendReport stream(const std::string& trace_path);

 private:
  // One connect + handshake. Returns the acked cursor via `cursor`.
  [[nodiscard]] Fd connect_with_retry(std::uint64_t& cursor, SendReport& report);
  [[nodiscard]] bool recv_frame(int fd, FrameParser& parser, Frame& out);

  SenderOptions options_;
  util::Clock& clock_;
};

}  // namespace tradeplot::svc
