// Argus-style bi-directional flow records (RFC 2722/2724 RTFM model).
//
// A FlowRecord summarises all packets of one connection, in both directions.
// Per the paper (§III): "TCP and UDP flows are identified by the 5-tuple...
// and packets in both directions are recorded as a summary of the
// communication". The `src` side is always the connection *initiator*.
// Records carry the first 64 bytes of connection payload, which the paper
// uses solely for ground-truth labelling of Traders.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <string_view>

#include "simnet/address.h"

namespace tradeplot::netflow {

enum class Protocol : std::uint8_t { kTcp = 6, kUdp = 17, kIcmp = 1 };

[[nodiscard]] std::string_view to_string(Protocol p);
/// Throws util::ParseError on unknown names ("tcp", "udp", "icmp").
[[nodiscard]] Protocol protocol_from_string(std::string_view s);

/// Outcome of the connection attempt, as far as a flow monitor can tell.
///
/// A *failed* connection (per the paper's failed-connection-rate feature) is
/// one where the initiator got no meaningful response: a TCP SYN that was
/// never answered or was reset before establishment, or a UDP request that
/// drew no reply.
enum class FlowState : std::uint8_t {
  kEstablished,  // TCP handshake completed / UDP got a reply
  kAttempted,    // initiator sent packets, nothing came back
  kReset,        // TCP RST before establishment
  kIcmpUnreach,  // ICMP unreachable received instead of a reply
};

[[nodiscard]] std::string_view to_string(FlowState s);
[[nodiscard]] FlowState flow_state_from_string(std::string_view s);

/// Maximum payload prefix captured per flow (the paper's Argus setup).
inline constexpr std::size_t kPayloadPrefixLen = 64;

struct FlowRecord {
  simnet::Ipv4 src;  // connection initiator
  simnet::Ipv4 dst;  // responder
  std::uint16_t sport = 0;
  std::uint16_t dport = 0;
  Protocol proto = Protocol::kTcp;

  double start_time = 0.0;  // seconds since trace start
  double end_time = 0.0;

  std::uint64_t pkts_src = 0;   // packets sent by the initiator
  std::uint64_t pkts_dst = 0;   // packets sent by the responder
  std::uint64_t bytes_src = 0;  // payload bytes sent by the initiator
  std::uint64_t bytes_dst = 0;  // payload bytes sent by the responder

  FlowState state = FlowState::kEstablished;

  /// First bytes of application payload on the connection (initiator side
  /// first, as Argus captures them); zero-padded past payload_len.
  std::array<unsigned char, kPayloadPrefixLen> payload{};
  std::uint8_t payload_len = 0;

  [[nodiscard]] double duration() const { return end_time - start_time; }
  [[nodiscard]] std::uint64_t total_bytes() const { return bytes_src + bytes_dst; }
  [[nodiscard]] std::uint64_t total_pkts() const { return pkts_src + pkts_dst; }
  [[nodiscard]] bool failed() const { return state != FlowState::kEstablished; }

  /// Payload prefix as a string_view (may contain NULs).
  [[nodiscard]] std::string_view payload_view() const {
    return {reinterpret_cast<const char*>(payload.data()), payload_len};
  }

  /// Copies up to kPayloadPrefixLen bytes of `data` into the payload field.
  void set_payload(std::string_view data);

  friend bool operator==(const FlowRecord&, const FlowRecord&) = default;
};

/// Builder for the common "one logical connection" case used by the host
/// behaviour models: fills in a consistent record from a few parameters.
class FlowBuilder {
 public:
  FlowBuilder& from(simnet::Ipv4 src, std::uint16_t sport);
  FlowBuilder& to(simnet::Ipv4 dst, std::uint16_t dport);
  FlowBuilder& proto(Protocol p);
  FlowBuilder& at(double start, double duration);
  /// Payload byte counts; packet counts are derived (~1 pkt / 1460 B, min 1)
  /// plus handshake packets for TCP.
  FlowBuilder& transfer(std::uint64_t bytes_up, std::uint64_t bytes_down);
  FlowBuilder& state(FlowState s);
  FlowBuilder& payload(std::string_view data);

  [[nodiscard]] FlowRecord build() const;

 private:
  FlowRecord rec_{};
  bool explicit_state_ = false;
};

}  // namespace tradeplot::netflow
