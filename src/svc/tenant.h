// One tenant = one StreamingDetector universe inside the monitor daemon.
//
// Connection threads parse kFlows payloads into columnar batches and
// offer() them here; a dedicated worker thread drains the bounded queue
// into the detector. The queue is where load management happens:
//
//  * Overflow::kBlock — offer() waits for room: lossless backpressure that
//    stalls the socket (TCP pushes back on the client). The oracle-equality
//    guarantee (daemon verdicts == single-shot batch run) holds under this
//    policy.
//  * Overflow::kShed — offer() drops the whole batch when it does not fit,
//    accounts every dropped row, and returns immediately. This is the
//    service-level analog of the detector's timing_budget shedding: both
//    trade evidence for boundedness and both leave an audit trail
//    (Stats::shed here, WindowVerdict::degraded there).
//
// Durability: the worker checkpoints the detector every checkpoint_every
// flows (batch splitting makes the boundary record-exact, the same pattern
// as campus_monitor --checkpoint) through a temp-file + rename, so a crash
// never leaves a torn checkpoint. start() restores the newest checkpoint if
// one exists; a corrupt or mismatched image is quarantined (renamed aside)
// and the tenant starts fresh — restore problems are accounted, never fatal.
// Verdicts append to <state_dir>/<name>.verdicts.jsonl; after a crash +
// resume the log may repeat a window index (the re-run suffix of the
// window), so readers deduplicate by window_index, last entry wins — the
// checkpoint guarantee makes duplicates bit-identical under kBlock.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <fstream>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "detect/streaming.h"
#include "netflow/flow_batch.h"
#include "svc/config.h"
#include "util/clock.h"

namespace tradeplot::svc {

/// The detector surface a tenant worker drives. StreamingDetector (shards =
/// 1) and shard::ShardedDetector (shards > 1) both satisfy it; the wrapper
/// keeps svc ignorant of which one runs behind a tenant. Checkpoint images
/// are format-tagged (TPCK vs TPSH), so restoring a checkpoint written by
/// the other backend fails loudly and the tenant quarantines it.
class DetectorBackend {
 public:
  virtual ~DetectorBackend() = default;
  virtual void ingest(const netflow::FlowBatch& batch, std::size_t begin, std::size_t end) = 0;
  virtual void flush() = 0;
  [[nodiscard]] virtual std::uint64_t flows_ingested_total() const = 0;
  virtual void save_checkpoint_file(const std::string& path) const = 0;
  virtual void restore_checkpoint_file(const std::string& path) = 0;
};

/// Builds the backend params_.shards selects (1 = StreamingDetector,
/// N > 1 = ShardedDetector with N workers).
[[nodiscard]] std::unique_ptr<DetectorBackend> make_detector_backend(
    const TenantParams& params, std::function<void(const detect::WindowVerdict&)> sink);

/// One verdict as a JSON line — the tenant verdict-log format, without the
/// trailing newline. Doubles print at %.17g, so equal verdicts produce equal
/// bytes; tests and the soak oracle format their expected verdicts through
/// this exact function and compare lines.
[[nodiscard]] std::string format_verdict_line(const detect::WindowVerdict& v);

class Tenant {
 public:
  /// Monotonic row/event accounting. accepted is the resume cursor the
  /// daemon acknowledges in HelloAck: every row a client offered is in
  /// exactly one of {queued-or-ingested, shed, quarantined}, and all three
  /// advance the cursor — an accounted loss is an answered row.
  struct Stats {
    std::uint64_t accepted = 0;
    std::uint64_t ingested = 0;
    std::uint64_t shed = 0;
    std::uint64_t quarantined = 0;
    std::uint64_t verdicts = 0;
    std::uint64_t checkpoints = 0;
    std::uint64_t checkpoint_failures = 0;
    std::uint64_t restore_failures = 0;
  };

  struct Offer {
    std::uint64_t enqueued = 0;
    std::uint64_t shed = 0;
  };

  Tenant(TenantParams params, std::string state_dir, util::Clock& clock);
  ~Tenant();
  Tenant(const Tenant&) = delete;
  Tenant& operator=(const Tenant&) = delete;

  /// Restores the checkpoint (if any), opens the verdict log, and spawns
  /// the worker. Throws util::IoError only for an unusable state_dir.
  void start();

  /// Graceful shutdown: drains the queue, writes a final checkpoint, then
  /// flushes the partial window (in that order — the checkpoint must
  /// describe the still-open window so a restart resumes it; the flushed
  /// verdict is the "superseded by restart" entry readers deduplicate).
  void stop();

  /// Offers a batch under the tenant's overflow policy. Advances the
  /// accepted cursor by batch.size() whether the rows were enqueued or
  /// shed. Thread-safe.
  Offer offer(netflow::FlowBatch&& batch);

  /// Rows the payload parser quarantined (malformed records). They advance
  /// the accepted cursor: the client's copy was answered, the loss is in
  /// the books.
  void add_quarantined(std::uint64_t n);

  /// Ingest barrier: blocks until every row enqueued before the call has
  /// been ingested, then returns the accounting snapshot (the kFlush
  /// reply). Does NOT close the detection window — windows roll on flow
  /// time only, so a barrier never perturbs verdicts.
  [[nodiscard]] Stats flush_barrier();

  [[nodiscard]] Stats stats() const;
  [[nodiscard]] std::uint64_t accepted_total() const {
    return accepted_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t queued_rows() const;

  /// Ready = started, checkpoint settled, worker alive. Feeds /readyz.
  [[nodiscard]] bool ready() const { return ready_.load(std::memory_order_relaxed); }

  [[nodiscard]] const std::string& name() const { return params_.name; }
  [[nodiscard]] const TenantParams& params() const { return params_; }

  /// Applies reloadable knobs (queue_capacity, overflow, checkpoint_every,
  /// policy). Detector-shaping parameters (window, timing_budget) are fixed
  /// per process lifetime — changing them would invalidate live state and
  /// saved checkpoints; a mismatch is reported, not applied.
  /// Returns false when a fixed parameter differed.
  bool update(const TenantParams& fresh);

  [[nodiscard]] std::string checkpoint_path() const;
  [[nodiscard]] std::string verdict_log_path() const;

  /// Daemon-global wall-clock checkpoint cadence (0 = flow-count only).
  /// Call before start().
  void set_checkpoint_interval(double seconds) { checkpoint_interval_ = seconds; }

 private:
  void worker_loop();
  void ingest_batch(const netflow::FlowBatch& batch);
  void save_checkpoint();
  void restore_on_start();
  void write_verdict(const detect::WindowVerdict& v);

  TenantParams params_;
  const std::string state_dir_;
  util::Clock& clock_;

  std::unique_ptr<DetectorBackend> detector_;  // worker thread only (after start)
  std::ofstream verdict_log_;

  mutable std::mutex mutex_;
  std::condition_variable cv_nonempty_;
  std::condition_variable cv_nonfull_;
  std::condition_variable cv_drained_;
  std::deque<netflow::FlowBatch> queue_;
  std::uint64_t queued_rows_locked_ = 0;  // rows in queue_ (under mutex_)
  bool worker_busy_ = false;
  bool stopping_ = false;
  std::thread worker_;

  std::atomic<std::uint64_t> accepted_{0};
  std::atomic<std::uint64_t> ingested_{0};
  std::atomic<std::uint64_t> shed_{0};
  std::atomic<std::uint64_t> quarantined_{0};
  std::atomic<std::uint64_t> verdicts_{0};
  std::atomic<std::uint64_t> checkpoints_{0};
  std::atomic<std::uint64_t> checkpoint_failures_{0};
  std::atomic<std::uint64_t> restore_failures_{0};
  std::atomic<bool> ready_{false};

  double next_interval_checkpoint_ = 0.0;  // worker thread only
  double checkpoint_interval_ = 0.0;       // fixed at start()
};

}  // namespace tradeplot::svc
