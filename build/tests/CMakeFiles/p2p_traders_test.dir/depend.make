# Empty dependencies file for p2p_traders_test.
# This may be replaced when dependencies are built.
