file(REMOVE_RECURSE
  "CMakeFiles/detect_streaming_test.dir/detect_streaming_test.cpp.o"
  "CMakeFiles/detect_streaming_test.dir/detect_streaming_test.cpp.o.d"
  "detect_streaming_test"
  "detect_streaming_test.pdb"
  "detect_streaming_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/detect_streaming_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
