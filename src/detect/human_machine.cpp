#include "detect/human_machine.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <map>
#include <unordered_map>
#include <utility>

#include "detect/hm_cache.h"
#include "obs/metrics.h"
#include "obs/profiler.h"
#include "stats/descriptive.h"
#include "stats/emd.h"
#include "stats/flat_signature.h"
#include "stats/hcluster.h"
#include "stats/histogram.h"
#include "util/error.h"
#include "util/parallel.h"

namespace tradeplot::detect {

namespace {

/// theta_hm metric handles: signature / distance provenance counters (the
/// cross-window cache's hit economics) plus per-tile kernel timings.
struct HmObs {
  obs::Counter& signatures_built = obs::Registry::global().counter(
      "tradeplot_hm_signatures_total", "theta_hm host signatures, by provenance",
      {{"op", "built"}});
  obs::Counter& signatures_reused = obs::Registry::global().counter(
      "tradeplot_hm_signatures_total", "theta_hm host signatures, by provenance",
      {{"op", "reused"}});
  obs::Counter& distances_computed = obs::Registry::global().counter(
      "tradeplot_hm_distances_total", "theta_hm pairwise distances, by provenance",
      {{"op", "computed"}});
  obs::Counter& distances_reused = obs::Registry::global().counter(
      "tradeplot_hm_distances_total", "theta_hm pairwise distances, by provenance",
      {{"op", "reused"}});
  obs::Histogram& tile_seconds = obs::Registry::global().histogram(
      "tradeplot_pairwise_tile_seconds",
      "Wall-clock duration of one pairwise distance tile", obs::duration_buckets(),
      {{"kernel", "bin_l1"}});

  static HmObs& get() {
    static HmObs o;
    return o;
  }
};

/// All signatures re-binned once onto the absolute grid, stored flat. The
/// per-pair kernel is then a straight L1 sweep with no lookups and no
/// allocation. Two storage forms, bit-identical in the sums they produce
/// (the sweep visits bins in ascending order either way, and bins where both
/// signatures are empty contribute an exact 0.0):
///  * dense  — one weight vector per signature over the population's full
///             [lo, hi] bin span; branch-free sweep. Used when the span is
///             modest (the realistic case: interstitials bounded by the
///             detection window over a 60 s grid).
///  * sparse — per-signature sorted (bin, weight) arrays with a merge
///             sweep; keeps memory O(points) when outlier positions blow
///             the span up.
class FlatBinSet {
 public:
  FlatBinSet(const std::vector<stats::Signature>& sigs, double grid, std::size_t threads) {
    const std::size_t n = sigs.size();
    // Validate serially, up front: a malformed signature must throw on the
    // calling thread before any worker starts.
    for (const stats::Signature& s : sigs) {
      double mass = 0.0;
      for (const stats::SignaturePoint& p : s) {
        if (p.weight < 0.0) throw util::ConfigError("bin-L1: negative signature weight");
        mass += p.weight;
      }
      if (!(mass > 0.0)) throw util::ConfigError("bin-L1: signature has no mass");
    }

    // Re-bin each signature once (weights accumulated in point order, bins
    // sorted). Each slot is written by exactly one task.
    std::vector<std::vector<std::pair<long long, double>>> sparse(n);
    util::parallel_for(0, n, 8, threads, [&](std::size_t i) {
      // floor, not truncation: casting p.position / grid rounds toward zero
      // and would merge the two grid cells straddling 0 into one bin.
      std::map<long long, double> acc;
      for (const stats::SignaturePoint& p : sigs[i]) {
        acc[std::llround(std::floor(p.position / grid))] += p.weight;
      }
      sparse[i].assign(acc.begin(), acc.end());
    });

    offsets_.resize(n + 1, 0);
    long long lo = 0, hi = -1;
    bool any = false;
    for (std::size_t i = 0; i < n; ++i) {
      offsets_[i + 1] = offsets_[i] + sparse[i].size();
      if (!sparse[i].empty()) {
        lo = any ? std::min(lo, sparse[i].front().first) : sparse[i].front().first;
        hi = any ? std::max(hi, sparse[i].back().first) : sparse[i].back().first;
        any = true;
      }
    }
    bins_.resize(offsets_[n]);
    bin_weights_.resize(offsets_[n]);
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t k = 0; k < sparse[i].size(); ++k) {
        bins_[offsets_[i] + k] = sparse[i][k].first;
        bin_weights_[offsets_[i] + k] = sparse[i][k].second;
      }
    }

    constexpr long long kDenseMaxBins = 4096;
    if (any && hi - lo + 1 <= kDenseMaxBins) {
      dense_ = true;
      lo_ = lo;
      width_ = static_cast<std::size_t>(hi - lo + 1);
      dense_weights_.assign(n * width_, 0.0);
      util::parallel_for(0, n, 8, threads, [&](std::size_t i) {
        double* row = dense_weights_.data() + i * width_;
        for (std::size_t k = offsets_[i]; k < offsets_[i + 1]; ++k) {
          row[static_cast<std::size_t>(bins_[k] - lo_)] = bin_weights_[k];
        }
      });
    }
  }

  [[nodiscard]] double l1(std::size_t i, std::size_t j) const {
    double l1 = 0.0;
    if (dense_) {
      const double* a = dense_weights_.data() + i * width_;
      const double* b = dense_weights_.data() + j * width_;
      for (std::size_t k = 0; k < width_; ++k) l1 += std::abs(a[k] - b[k]);
      return l1;
    }
    std::size_t a = offsets_[i], b = offsets_[j];
    const std::size_t a_end = offsets_[i + 1], b_end = offsets_[j + 1];
    while (a < a_end || b < b_end) {
      if (b >= b_end || (a < a_end && bins_[a] < bins_[b])) {
        l1 += bin_weights_[a++];
      } else if (a >= a_end || bins_[b] < bins_[a]) {
        l1 += bin_weights_[b++];
      } else {
        l1 += std::abs(bin_weights_[a++] - bin_weights_[b++]);
      }
    }
    return l1;
  }

 private:
  std::vector<long long> bins_;
  std::vector<double> bin_weights_;
  std::vector<std::size_t> offsets_;  // n + 1 entries into the sparse arrays
  bool dense_ = false;
  long long lo_ = 0;
  std::size_t width_ = 0;
  std::vector<double> dense_weights_;  // n * width_ when dense
};

/// Upper-triangle pairwise fill in cache-blocked tiles (mirrored into the
/// lower triangle). Each tile owns disjoint cells, so any worker order
/// produces the identical matrix.
template <typename CellFn>
void fill_pairwise_tiled(std::vector<double>& d, std::size_t n, std::size_t threads,
                         const CellFn& cell) {
  constexpr std::size_t kTile = 64;
  const std::size_t tile_count = (n + kTile - 1) / kTile;
  std::vector<std::pair<std::size_t, std::size_t>> tiles;
  tiles.reserve(tile_count * (tile_count + 1) / 2);
  for (std::size_t ti = 0; ti < tile_count; ++ti) {
    for (std::size_t tj = ti; tj < tile_count; ++tj) tiles.emplace_back(ti, tj);
  }
  util::parallel_for(0, tiles.size(), 1, threads, [&](std::size_t t) {
    const obs::ScopedTimer tile_timer(obs::enabled() ? &HmObs::get().tile_seconds
                                                     : nullptr);
    const auto [ti, tj] = tiles[t];
    const std::size_t i_end = std::min(n, (ti + 1) * kTile);
    const std::size_t j_end = std::min(n, (tj + 1) * kTile);
    for (std::size_t i = ti * kTile; i < i_end; ++i) {
      for (std::size_t j = std::max(i + 1, tj * kTile); j < j_end; ++j) {
        const double v = cell(i, j);
        d[i * n + j] = v;
        d[j * n + i] = v;
      }
    }
  });
}

double bin_l1_grid(const HumanMachineConfig& config) {
  return config.fixed_bin_width > 0.0 ? config.fixed_bin_width : 60.0;
}

/// Distance matrix through the cross-window cache: reuse every pair whose
/// two hosts' content hashes match the stored entry, compute only the
/// missing cells with the flat kernels, then retain exactly this window's
/// pairs (one-window retention keeps the cache — and its checkpoint image —
/// bounded by the last window's size).
std::vector<double> cached_distances(const std::vector<stats::Signature>& signatures,
                                     const std::vector<simnet::Ipv4>& hosts,
                                     const std::vector<std::uint64_t>& hashes,
                                     const HumanMachineConfig& config, HmCache& cache) {
  const std::size_t n = signatures.size();
  std::vector<double> d(n * n, 0.0);
  const std::size_t reused_before = cache.distances_reused;
  std::vector<std::pair<std::uint32_t, std::uint32_t>> missing;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      const auto it = cache.distances.find(HmCache::pair_key(hosts[i], hosts[j]));
      const std::uint64_t hash_lo = hosts[i].value() < hosts[j].value() ? hashes[i] : hashes[j];
      const std::uint64_t hash_hi = hosts[i].value() < hosts[j].value() ? hashes[j] : hashes[i];
      if (it != cache.distances.end() && it->second.hash_lo == hash_lo &&
          it->second.hash_hi == hash_hi) {
        d[i * n + j] = it->second.distance;
        d[j * n + i] = it->second.distance;
        ++cache.distances_reused;
      } else {
        missing.emplace_back(static_cast<std::uint32_t>(i), static_cast<std::uint32_t>(j));
      }
    }
  }

  if (!missing.empty()) {
    if (config.distance == HmDistance::kBinL1) {
      const FlatBinSet bins(signatures, bin_l1_grid(config), config.threads);
      util::parallel_for(0, missing.size(), 64, config.threads, [&](std::size_t k) {
        const auto [i, j] = missing[k];
        const double v = bins.l1(i, j);
        d[i * n + j] = v;
        d[j * n + i] = v;
      });
    } else {
      const stats::FlatSignatureSet flat(signatures, config.threads);
      util::parallel_for(0, missing.size(), 64, config.threads, [&](std::size_t k) {
        const auto [i, j] = missing[k];
        const double v = stats::emd_1d_presorted(flat.view(i), flat.view(j));
        d[i * n + j] = v;
        d[j * n + i] = v;
      });
    }
    cache.distances_computed += missing.size();
  }
  if (obs::enabled()) {
    HmObs& o = HmObs::get();
    o.distances_reused.add(cache.distances_reused - reused_before);
    o.distances_computed.add(missing.size());
  }

  std::unordered_map<std::uint64_t, HmCache::DistanceEntry> retained;
  retained.reserve(n * (n - 1) / 2);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      const std::uint64_t hash_lo = hosts[i].value() < hosts[j].value() ? hashes[i] : hashes[j];
      const std::uint64_t hash_hi = hosts[i].value() < hosts[j].value() ? hashes[j] : hashes[i];
      retained.emplace(HmCache::pair_key(hosts[i], hosts[j]),
                       HmCache::DistanceEntry{hash_lo, hash_hi, d[i * n + j]});
    }
  }
  cache.distances = std::move(retained);
  return d;
}

}  // namespace

std::vector<double> pairwise_bin_l1(const std::vector<stats::Signature>& sigs,
                                    const HumanMachineConfig& config) {
  const std::size_t n = sigs.size();
  const FlatBinSet bins(sigs, bin_l1_grid(config), config.threads);
  std::vector<double> d(n * n, 0.0);
  if (n < 2) return d;
  fill_pairwise_tiled(d, n, config.threads,
                      [&](std::size_t i, std::size_t j) { return bins.l1(i, j); });
  return d;
}

HumanMachineResult human_machine_test(const FeatureMap& features, const HostSet& input,
                                      const HumanMachineConfig& config, HmCache* cache) {
  HumanMachineResult result;

  // Select eligible hosts serially (cheap), then build the histogram
  // signatures in parallel — each host writes only its own slot, so the
  // signature list is identical for every thread count.
  std::vector<simnet::Ipv4> hosts;
  std::vector<const HostFeatures*> eligible;
  for (const simnet::Ipv4 host : input) {
    const auto it = features.find(host);
    if (it == features.end())
      throw util::ConfigError("host " + host.to_string() + " missing from feature map");
    const HostFeatures& f = it->second;
    if (f.interstitials.size() < config.min_samples) {
      result.skipped.push_back(host);
      continue;
    }
    hosts.push_back(host);
    eligible.push_back(&f);
  }
  if (hosts.size() < config.min_cluster_size) {
    std::sort(result.skipped.begin(), result.skipped.end());
    return result;
  }

  // Content hashes of the timing buffers gate signature reuse: a host whose
  // interstitials are byte-identical to its cached entry keeps its signature
  // (and, below, its distance rows) without recomputation.
  std::vector<std::uint64_t> hashes;
  std::vector<std::uint8_t> reuse_signature;
  if (cache != nullptr) {
    hashes.resize(hosts.size());
    reuse_signature.assign(hosts.size(), 0);
    for (std::size_t i = 0; i < hosts.size(); ++i) {
      hashes[i] = hm_content_hash(eligible[i]->interstitials, config.fixed_bin_width,
                                  static_cast<int>(config.distance));
      const auto it = cache->signatures.find(hosts[i]);
      reuse_signature[i] = it != cache->signatures.end() && it->second.hash == hashes[i];
    }
  }

  std::vector<stats::Signature> signatures(hosts.size());
  {
    const obs::StageTimer sig_timer(obs::Stage::kSignatureBuild);
    util::parallel_for(0, hosts.size(), 1, config.threads, [&](std::size_t i) {
      if (cache != nullptr && reuse_signature[i]) {
        signatures[i] = cache->signatures.at(hosts[i]).signature;
        return;
      }
      const HostFeatures& f = *eligible[i];
      const stats::Histogram hist =
          config.fixed_bin_width > 0.0
              ? stats::Histogram(f.interstitials, config.fixed_bin_width)
              : stats::Histogram::with_fd_width(f.interstitials);
      signatures[i] = config.distance == HmDistance::kEmdBinIndex ? hist.index_signature()
                                                                  : hist.signature();
    });
  }
  if (cache != nullptr) {
    const std::size_t built_before = cache->signatures_built;
    const std::size_t reused_before = cache->signatures_reused;
    std::unordered_map<simnet::Ipv4, HmCache::SignatureEntry> retained;
    retained.reserve(hosts.size());
    for (std::size_t i = 0; i < hosts.size(); ++i) {
      if (reuse_signature[i]) {
        ++cache->signatures_reused;
      } else {
        ++cache->signatures_built;
      }
      retained.emplace(hosts[i], HmCache::SignatureEntry{hashes[i], signatures[i]});
    }
    cache->signatures = std::move(retained);
    if (obs::enabled()) {
      HmObs& o = HmObs::get();
      o.signatures_built.add(cache->signatures_built - built_before);
      o.signatures_reused.add(cache->signatures_reused - reused_before);
    }
  } else if (obs::enabled()) {
    HmObs::get().signatures_built.add(hosts.size());
  }

  std::vector<double> distances;
  {
    const obs::StageTimer dist_timer(obs::Stage::kPairwiseDistance);
    distances = cache != nullptr ? cached_distances(signatures, hosts, hashes, config, *cache)
                : config.distance == HmDistance::kBinL1
                    ? pairwise_bin_l1(signatures, config)
                    : stats::pairwise_emd(signatures, config.threads);
    if (cache == nullptr && obs::enabled())
      HmObs::get().distances_computed.add(hosts.size() * (hosts.size() - 1) / 2);
  }
  const auto groups = [&] {
    const obs::StageTimer cluster_timer(obs::Stage::kClustering);
    const stats::Dendrogram dendrogram =
        stats::agglomerative_average_linkage(distances, hosts.size());
    return dendrogram.cut_top_fraction(config.cut_fraction);
  }();

  // Diameters of the clusters that carry similarity evidence.
  std::vector<double> diameters;
  for (const auto& group : groups) {
    if (group.size() < config.min_cluster_size) continue;
    HostCluster cluster;
    for (const std::size_t idx : group) cluster.members.push_back(hosts[idx]);
    cluster.diameter = stats::cluster_diameter(distances, hosts.size(), group);
    diameters.push_back(cluster.diameter);
    result.clusters.push_back(std::move(cluster));
  }
  if (result.clusters.empty()) {
    std::sort(result.skipped.begin(), result.skipped.end());
    return result;
  }

  result.tau_hm = stats::quantile(diameters, config.diameter_percentile);
  for (HostCluster& cluster : result.clusters) {
    cluster.kept = cluster.diameter <= result.tau_hm;
    if (cluster.kept) {
      result.flagged.insert(result.flagged.end(), cluster.members.begin(),
                            cluster.members.end());
    }
  }
  std::sort(result.flagged.begin(), result.flagged.end());
  std::sort(result.skipped.begin(), result.skipped.end());
  return result;
}

}  // namespace tradeplot::detect
