#include "simnet/simulation.h"

#include <gtest/gtest.h>

#include <vector>

namespace tradeplot::simnet {
namespace {

TEST(Simulation, ExecutesInTimeOrder) {
  Simulation sim;
  std::vector<int> order;
  sim.schedule_at(3.0, [&] { order.push_back(3); });
  sim.schedule_at(1.0, [&] { order.push_back(1); });
  sim.schedule_at(2.0, [&] { order.push_back(2); });
  EXPECT_EQ(sim.run_all(), 3u);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Simulation, TieBrokenByInsertionOrder) {
  Simulation sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    sim.schedule_at(5.0, [&order, i] { order.push_back(i); });
  }
  sim.run_all();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(Simulation, NowAdvancesWithEvents) {
  Simulation sim;
  double seen = -1;
  sim.schedule_at(4.5, [&] { seen = sim.now(); });
  sim.run_all();
  EXPECT_DOUBLE_EQ(seen, 4.5);
  EXPECT_DOUBLE_EQ(sim.now(), 4.5);
}

TEST(Simulation, RunUntilStopsAtBoundaryInclusive) {
  Simulation sim;
  int count = 0;
  sim.schedule_at(1.0, [&] { ++count; });
  sim.schedule_at(2.0, [&] { ++count; });
  sim.schedule_at(2.0001, [&] { ++count; });
  EXPECT_EQ(sim.run_until(2.0), 2u);
  EXPECT_EQ(count, 2);
  EXPECT_DOUBLE_EQ(sim.now(), 2.0);
  EXPECT_EQ(sim.pending(), 1u);
}

TEST(Simulation, RunUntilAdvancesClockEvenWithoutEvents) {
  Simulation sim;
  sim.run_until(100.0);
  EXPECT_DOUBLE_EQ(sim.now(), 100.0);
}

TEST(Simulation, SchedulingInThePastClampsToNow) {
  Simulation sim;
  std::vector<double> times;
  sim.schedule_at(5.0, [&] {
    sim.schedule_at(1.0, [&] { times.push_back(sim.now()); });
  });
  sim.run_all();
  ASSERT_EQ(times.size(), 1u);
  EXPECT_DOUBLE_EQ(times[0], 5.0);
}

TEST(Simulation, ScheduleAfterNegativeDelayClamps) {
  Simulation sim;
  int count = 0;
  sim.schedule_after(-3.0, [&] { ++count; });
  sim.run_all();
  EXPECT_EQ(count, 1);
}

TEST(Simulation, EventsCanScheduleMoreEvents) {
  Simulation sim;
  int depth = 0;
  std::function<void()> recurse = [&] {
    if (++depth < 5) sim.schedule_after(1.0, recurse);
  };
  sim.schedule_at(0.0, recurse);
  sim.run_all();
  EXPECT_EQ(depth, 5);
  EXPECT_DOUBLE_EQ(sim.now(), 4.0);
}

TEST(PeriodicProcess, FiresAtFixedPeriodUntilDeadline) {
  Simulation sim;
  std::vector<double> fire_times;
  PeriodicProcess::start(
      sim, 1.0, 10.0, [] { return 2.0; },
      [&](SimTime now) { fire_times.push_back(now); });
  sim.run_until(100.0);
  // Fires at 1, 3, 5, 7, 9.
  ASSERT_EQ(fire_times.size(), 5u);
  EXPECT_DOUBLE_EQ(fire_times.front(), 1.0);
  EXPECT_DOUBLE_EQ(fire_times.back(), 9.0);
}

TEST(PeriodicProcess, NeverFiresIfFirstDelayPastDeadline) {
  Simulation sim;
  int count = 0;
  PeriodicProcess::start(
      sim, 50.0, 10.0, [] { return 1.0; }, [&](SimTime) { ++count; });
  sim.run_until(100.0);
  EXPECT_EQ(count, 0);
}

TEST(PeriodicProcess, VariablePeriod) {
  Simulation sim;
  double period = 1.0;
  std::vector<double> fire_times;
  PeriodicProcess::start(
      sim, 0.0, 16.0,
      [&] {
        period *= 2.0;
        return period;
      },
      [&](SimTime now) { fire_times.push_back(now); });
  sim.run_until(100.0);
  // Fires at 0, 2, 6, 14 (periods 2, 4, 8 after the first).
  EXPECT_EQ(fire_times, (std::vector<double>{0.0, 2.0, 6.0, 14.0}));
}

}  // namespace
}  // namespace tradeplot::simnet
