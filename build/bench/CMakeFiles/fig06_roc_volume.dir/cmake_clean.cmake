file(REMOVE_RECURSE
  "CMakeFiles/fig06_roc_volume.dir/fig06_roc_volume.cpp.o"
  "CMakeFiles/fig06_roc_volume.dir/fig06_roc_volume.cpp.o.d"
  "fig06_roc_volume"
  "fig06_roc_volume.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig06_roc_volume.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
