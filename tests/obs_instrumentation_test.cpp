// End-to-end instrumentation contract: metrics collection must be a pure
// observer. Verdicts are bit-identical with metrics on or off, and the
// counters the scrape exposes must agree with the pipeline's own
// bookkeeping (IngestStats, window counts, checkpoint activity).
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "botnet/honeynet.h"
#include "detect/streaming.h"
#include "netflow/fault_injector.h"
#include "netflow/io.h"
#include "netflow/trace_reader.h"
#include "obs/metrics.h"
#include "obs/profiler.h"
#include "util/parallel.h"
#include "util/rng.h"

namespace tradeplot::obs {
namespace {

/// Re-enables/disables obs around a scope and always restores "off" so a
/// failing test cannot leak the enabled flag into its neighbours.
struct EnabledGuard {
  explicit EnabledGuard(bool on) { set_enabled(on); }
  ~EnabledGuard() { set_enabled(false); }
};

const SnapshotSample* find_sample(const MetricsSnapshot& snap,
                                  std::string_view name, const Labels& labels = {}) {
  for (const SnapshotSample& s : snap.samples) {
    if (s.name == name && s.labels == labels) return &s;
  }
  return nullptr;
}

double sample_value(const MetricsSnapshot& snap, std::string_view name,
                    const Labels& labels = {}) {
  const SnapshotSample* s = find_sample(snap, name, labels);
  EXPECT_NE(s, nullptr) << "missing sample " << name;
  return s != nullptr ? s->value : -1.0;
}

std::uint64_t histogram_count(const MetricsSnapshot& snap, std::string_view name,
                              const Labels& labels = {}) {
  const SnapshotSample* s = find_sample(snap, name, labels);
  EXPECT_NE(s, nullptr) << "missing histogram " << name;
  return s != nullptr ? s->histogram.count : 0;
}

netflow::TraceSet storm_trace() {
  botnet::HoneynetConfig h;
  h.seed = 3;
  h.duration = 1800.0;
  h.nugache_bots = 0;
  return botnet::generate_storm_trace(h);
}

detect::StreamingConfig streaming_config(double window) {
  detect::StreamingConfig c;
  c.window = window;
  c.is_internal = detect::default_internal_predicate;
  return c;
}

/// Everything observable about one window verdict, comparable field by field.
struct VerdictSummary {
  std::size_t window_index = 0;
  double window_start = 0.0;
  double window_end = 0.0;
  std::size_t flows_seen = 0;
  bool degraded = false;
  std::size_t hosts_shed = 0;
  detect::HostSet input, reduced, s_vol, s_churn, vol_or_churn, plotters;
  bool operator==(const VerdictSummary&) const = default;
};

std::vector<VerdictSummary> run_streaming(const netflow::TraceSet& trace,
                                          bool metrics_on) {
  const EnabledGuard guard(metrics_on);
  std::vector<VerdictSummary> out;
  detect::StreamingDetector detector(
      streaming_config(600.0), [&](const detect::WindowVerdict& v) {
        out.push_back({v.window_index, v.window_start, v.window_end, v.flows_seen,
                       v.degraded, v.hosts_shed, v.result.input, v.result.reduced,
                       v.result.s_vol, v.result.s_churn, v.result.vol_or_churn,
                       v.result.plotters});
      });
  for (const netflow::FlowRecord& rec : trace.flows()) detector.ingest(rec);
  detector.flush();
  return out;
}

TEST(ObsInstrumentation, StreamingVerdictsBitIdenticalMetricsOnOrOff) {
  const netflow::TraceSet trace = storm_trace();
  const std::vector<VerdictSummary> off = run_streaming(trace, false);
  Registry::global().reset();
  const std::vector<VerdictSummary> on = run_streaming(trace, true);
  ASSERT_FALSE(off.empty());
  EXPECT_EQ(off, on);
}

TEST(ObsInstrumentation, TraceReaderCountersMatchIngestStats) {
  // Corrupt a CSV trace, read it under the skip policy with metrics on, and
  // require the scrape to agree exactly with the reader's own IngestStats.
  util::Pcg32 rng(11);
  netflow::TraceSet trace(0.0, 3600.0);
  for (int i = 0; i < 200; ++i) {
    netflow::FlowRecord r;
    r.src = simnet::Ipv4(128, 2, 0, static_cast<std::uint8_t>(1 + (i % 6)));
    r.dst = simnet::Ipv4(static_cast<std::uint32_t>(rng.uniform_int(1 << 26, 1 << 28)));
    r.sport = static_cast<std::uint16_t>(rng.uniform_int(1024, 65535));
    r.dport = 80;
    r.proto = netflow::Protocol::kTcp;
    r.start_time = rng.uniform(0, 3000);
    r.end_time = r.start_time + 1;
    r.pkts_src = 2;
    r.pkts_dst = 1;
    r.bytes_src = 100;
    r.bytes_dst = 50;
    r.state = netflow::FlowState::kEstablished;
    trace.add_flow(std::move(r));
  }
  std::stringstream clean;
  netflow::write_csv(clean, trace);
  netflow::FaultInjectorConfig cfg;
  cfg.seed = 5;
  cfg.fault_rate = 0.2;
  netflow::FaultReport report;
  const std::string corrupted =
      netflow::FaultInjector(cfg).corrupt_csv(clean.str(), report);
  ASSERT_GT(report.fault_count(), 0u);

  Registry::global().reset();
  const EnabledGuard guard(true);
  std::stringstream in(corrupted);
  netflow::TraceReader reader(in, netflow::ErrorPolicy::skip());
  netflow::FlowRecord rec;
  std::size_t decoded = 0;
  while (reader.next(rec)) ++decoded;
  const netflow::IngestStats& stats = reader.ingest_stats();
  const MetricsSnapshot snap = Registry::global().snapshot();

  EXPECT_EQ(sample_value(snap, "tradeplot_ingest_records_total",
                         {{"result", "ok"}}),
            static_cast<double>(stats.records_ok));
  EXPECT_EQ(stats.records_ok, decoded);
  EXPECT_EQ(sample_value(snap, "tradeplot_ingest_records_total",
                         {{"result", "quarantined"}}),
            static_cast<double>(stats.records_quarantined));
  EXPECT_GT(stats.records_quarantined, 0u);
  EXPECT_EQ(sample_value(snap, "tradeplot_ingest_resync_events_total"),
            static_cast<double>(stats.resync_events));
  EXPECT_EQ(sample_value(snap, "tradeplot_ingest_bytes_total"),
            static_cast<double>(corrupted.size()));
  // One timed decode attempt per next() call, including the final EOF probe.
  EXPECT_EQ(histogram_count(snap, "tradeplot_ingest_record_seconds"),
            decoded + 1);
}

TEST(ObsInstrumentation, StreamingScrapeCoversRequiredFamilies) {
  const netflow::TraceSet trace = storm_trace();
  Registry::global().reset();
  const EnabledGuard guard(true);

  const detect::StreamingConfig cfg = streaming_config(600.0);
  std::size_t windows = 0;
  detect::StreamingDetector detector(cfg,
                                     [&](const detect::WindowVerdict&) { ++windows; });
  for (const netflow::FlowRecord& rec : trace.flows()) detector.ingest(rec);
  detector.flush();
  std::stringstream checkpoint;
  detector.save_checkpoint(checkpoint);
  detect::StreamingDetector resumed(cfg, [](const detect::WindowVerdict&) {});
  resumed.restore_checkpoint(checkpoint);

  const MetricsSnapshot snap = Registry::global().snapshot();
  EXPECT_EQ(sample_value(snap, "tradeplot_stream_flows_total"),
            static_cast<double>(trace.flows().size()));
  EXPECT_EQ(sample_value(snap, "tradeplot_stream_windows_total",
                         {{"outcome", "ok"}}),
            static_cast<double>(windows));
  EXPECT_EQ(histogram_count(snap, "tradeplot_window_flows"), windows);
  EXPECT_EQ(histogram_count(snap, "tradeplot_stage_duration_seconds",
                            {{"stage", "window_close"}}),
            windows);
  EXPECT_GE(histogram_count(snap, "tradeplot_stage_duration_seconds",
                            {{"stage", "checkpoint_save"}}),
            1u);
  EXPECT_GE(histogram_count(snap, "tradeplot_stage_duration_seconds",
                            {{"stage", "checkpoint_restore"}}),
            1u);
  EXPECT_GE(histogram_count(snap, "tradeplot_stage_duration_seconds",
                            {{"stage", "data_reduction"}}),
            1u);
  EXPECT_GE(histogram_count(snap, "tradeplot_checkpoint_bytes"), 1u);
  // The storm trace reaches θ_hm, so signatures must have been built.
  EXPECT_GT(sample_value(snap, "tradeplot_hm_signatures_total",
                         {{"op", "built"}}),
            0.0);
  ASSERT_NE(find_sample(snap, "tradeplot_hm_distances_total",
                        {{"op", "computed"}}),
            nullptr);
}

TEST(ObsInstrumentation, ThreadPoolReportsTasksAndQueueDrains) {
  Registry::global().reset();
  const EnabledGuard guard(true);
  std::atomic<std::uint64_t> sum{0};
  util::parallel_for(0, 10000, 1, 4,
                     [&](std::size_t i) { sum.fetch_add(i, std::memory_order_relaxed); });
  const MetricsSnapshot snap = Registry::global().snapshot();
  const double tasks = sample_value(snap, "tradeplot_pool_tasks_total");
  EXPECT_GE(tasks, 1.0);
  EXPECT_EQ(sample_value(snap, "tradeplot_pool_queue_depth"), 0.0);
  EXPECT_EQ(histogram_count(snap, "tradeplot_pool_task_seconds"),
            static_cast<std::uint64_t>(tasks));
  EXPECT_EQ(sum.load(), 10000ull * 9999ull / 2);
}

TEST(ObsInstrumentation, DisabledCollectsNothing) {
  Registry::global().reset();
  set_enabled(false);
  const netflow::TraceSet trace = storm_trace();
  detect::StreamingDetector detector(streaming_config(600.0),
                                     [](const detect::WindowVerdict&) {});
  for (const netflow::FlowRecord& rec : trace.flows()) detector.ingest(rec);
  detector.flush();
  for (const SnapshotSample& s : Registry::global().snapshot().samples) {
    if (s.type == MetricType::kHistogram) {
      EXPECT_EQ(s.histogram.count, 0u) << s.name;
    } else {
      EXPECT_EQ(s.value, 0.0) << s.name;
    }
  }
}

}  // namespace
}  // namespace tradeplot::obs
