file(REMOVE_RECURSE
  "CMakeFiles/fig03_interstitial.dir/fig03_interstitial.cpp.o"
  "CMakeFiles/fig03_interstitial.dir/fig03_interstitial.cpp.o.d"
  "fig03_interstitial"
  "fig03_interstitial.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig03_interstitial.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
