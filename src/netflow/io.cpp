#include "netflow/io.h"

#include <cstdint>
#include <cstring>
#include <fstream>
#include <ostream>
#include <string_view>
#include <vector>

#include "netflow/flow_batch.h"
#include "netflow/trace_reader.h"
#include "util/error.h"
#include "util/stream_retry.h"

namespace tradeplot::netflow {

namespace {

constexpr std::string_view kCsvHeader =
    "src,dst,sport,dport,proto,start,end,pkts_src,pkts_dst,bytes_src,bytes_dst,state,payload";

std::string hex_encode(const unsigned char* data, std::size_t n) {
  static constexpr char kHex[] = "0123456789abcdef";
  std::string out;
  out.reserve(n * 2);
  for (std::size_t i = 0; i < n; ++i) {
    out.push_back(kHex[data[i] >> 4]);
    out.push_back(kHex[data[i] & 0xf]);
  }
  return out;
}

}  // namespace

void write_csv(std::ostream& out, const TraceSet& trace) {
  // Full double precision: flow timestamps must round-trip exactly.
  out.precision(17);
  out << "#window," << trace.window_start() << ',' << trace.window_end() << '\n';
  for (const auto& [ip, kind] : trace.truth())
    out << "#truth," << ip.to_string() << ',' << to_string(kind) << '\n';
  out << kCsvHeader << '\n';
  for (const FlowRecord& r : trace.flows()) {
    out << r.src.to_string() << ',' << r.dst.to_string() << ',' << r.sport << ',' << r.dport
        << ',' << to_string(r.proto) << ',' << r.start_time << ',' << r.end_time << ','
        << r.pkts_src << ',' << r.pkts_dst << ',' << r.bytes_src << ',' << r.bytes_dst << ','
        << to_string(r.state) << ',' << hex_encode(r.payload.data(), r.payload_len) << '\n';
  }
  if (!out) throw util::IoError("CSV write failed");
}

TraceSet read_csv(std::istream& in) {
  TraceReader reader(in, TraceFormat::kCsv);
  return reader.read_all();
}

namespace {

constexpr std::uint32_t kBinMagic = 0x54504654;  // "TPFT"
constexpr std::uint32_t kBinVersion = 1;

// Accumulates the wire image in large chunks so the stream sees one write()
// per block instead of one per field. The byte layout is identical to the
// old field-at-a-time writer: each value is appended raw (packed,
// little-endian on every supported target).
class BufferedSink {
 public:
  static constexpr std::size_t kBlockSize = 1 << 18;  // 256 KiB

  explicit BufferedSink(std::ostream& out) : out_(out) { buf_.reserve(kBlockSize); }

  template <typename T>
  void put(T value) {
    append(&value, sizeof(value));
  }

  void append(const void* data, std::size_t n) {
    if (buf_.size() + n > kBlockSize) flush();
    const char* bytes = static_cast<const char*>(data);
    buf_.insert(buf_.end(), bytes, bytes + n);
  }

  /// Drains the buffer and verifies the stream accepted it: an unwritable
  /// sink (closed file, full disk) must surface as util::IoError at the
  /// first failing block, not be silently dropped. Writes interrupted by a
  /// signal (EINTR) are retried — a SIGHUP landing mid-checkpoint must not
  /// turn into a truncated trace.
  void flush() {
    if (!buf_.empty()) {
      const bool ok = util::write_retry(out_, buf_.data(), buf_.size());
      buf_.clear();
      if (!ok || out_.fail())
        throw util::IoError("binary trace write failed (sink rejected write)");
    }
  }

 private:
  std::ostream& out_;
  std::vector<char> buf_;
};

// Shared preamble for v1 and v3: magic, version tag, window bounds, truth
// section, total flow count.
void write_preamble(BufferedSink& sink, std::uint32_t version, double window_start,
                    double window_end,
                    const std::unordered_map<simnet::Ipv4, HostKind>* truth,
                    std::uint64_t flow_count) {
  sink.put(kBinMagic);
  sink.put(version);
  sink.put(window_start);
  sink.put(window_end);
  sink.put(static_cast<std::uint64_t>(truth ? truth->size() : 0));
  if (truth) {
    for (const auto& [ip, kind] : *truth) {
      sink.put(ip.value());
      sink.put(static_cast<std::uint8_t>(kind));
    }
  }
  sink.put(flow_count);
}

}  // namespace

void write_binary(std::ostream& out, const FlowRecord* flows, std::size_t n,
                  double window_start, double window_end,
                  const std::unordered_map<simnet::Ipv4, HostKind>* truth) {
  BufferedSink sink(out);
  write_preamble(sink, kBinVersion, window_start, window_end, truth,
                 static_cast<std::uint64_t>(n));
  for (std::size_t i = 0; i < n; ++i) {
    const FlowRecord& r = flows[i];
    sink.put(r.src.value());
    sink.put(r.dst.value());
    sink.put(r.sport);
    sink.put(r.dport);
    sink.put(static_cast<std::uint8_t>(r.proto));
    sink.put(r.start_time);
    sink.put(r.end_time);
    sink.put(r.pkts_src);
    sink.put(r.pkts_dst);
    sink.put(r.bytes_src);
    sink.put(r.bytes_dst);
    sink.put(static_cast<std::uint8_t>(r.state));
    sink.put(r.payload_len);
    sink.append(r.payload.data(), r.payload_len);
  }
  sink.flush();
  if (!out) throw util::IoError("binary trace write failed");
}

void write_binary(std::ostream& out, const TraceSet& trace) {
  write_binary(out, trace.flows().data(), trace.flows().size(), trace.window_start(),
               trace.window_end(), &trace.truth());
}

namespace {

constexpr std::uint32_t kBinVersionColumnar = 3;

/// Rows per v3 column block: one TraceReader::next_batch delivery.
constexpr std::size_t kColumnarBlockRows = FlowBatch::kDefaultCapacity;

void write_columnar_block(BufferedSink& sink, const FlowRecord* flows, std::size_t n) {
  sink.put(static_cast<std::uint32_t>(n));
  for (std::size_t i = 0; i < n; ++i) sink.put(flows[i].src.value());
  for (std::size_t i = 0; i < n; ++i) sink.put(flows[i].dst.value());
  for (std::size_t i = 0; i < n; ++i) sink.put(flows[i].sport);
  for (std::size_t i = 0; i < n; ++i) sink.put(flows[i].dport);
  for (std::size_t i = 0; i < n; ++i) sink.put(static_cast<std::uint8_t>(flows[i].proto));
  for (std::size_t i = 0; i < n; ++i) sink.put(flows[i].start_time);
  for (std::size_t i = 0; i < n; ++i) sink.put(flows[i].end_time);
  for (std::size_t i = 0; i < n; ++i) sink.put(flows[i].pkts_src);
  for (std::size_t i = 0; i < n; ++i) sink.put(flows[i].pkts_dst);
  for (std::size_t i = 0; i < n; ++i) sink.put(flows[i].bytes_src);
  for (std::size_t i = 0; i < n; ++i) sink.put(flows[i].bytes_dst);
  for (std::size_t i = 0; i < n; ++i) sink.put(static_cast<std::uint8_t>(flows[i].state));
  for (std::size_t i = 0; i < n; ++i) sink.put(flows[i].payload_len);
  // Whole fixed-stride slots: FlowRecord keeps the payload array zero-padded
  // past payload_len, so the block is canonical as written.
  for (std::size_t i = 0; i < n; ++i)
    sink.append(flows[i].payload.data(), kPayloadPrefixLen);
}

}  // namespace

void write_binary_columnar(std::ostream& out, const FlowRecord* flows, std::size_t n,
                           double window_start, double window_end,
                           const std::unordered_map<simnet::Ipv4, HostKind>* truth) {
  BufferedSink sink(out);
  write_preamble(sink, kBinVersionColumnar, window_start, window_end, truth,
                 static_cast<std::uint64_t>(n));
  for (std::size_t base = 0; base < n; base += kColumnarBlockRows) {
    const std::size_t rows = std::min(kColumnarBlockRows, n - base);
    write_columnar_block(sink, flows + base, rows);
  }
  sink.flush();
  if (!out) throw util::IoError("binary trace write failed");
}

void write_binary_columnar(std::ostream& out, const TraceSet& trace) {
  write_binary_columnar(out, trace.flows().data(), trace.flows().size(),
                        trace.window_start(), trace.window_end(), &trace.truth());
}

TraceSet read_binary(std::istream& in) {
  TraceReader reader(in, TraceFormat::kBinary);
  return reader.read_all();
}

namespace {

template <typename Fn>
void with_ofstream(const std::string& path, Fn fn) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw util::IoError("cannot open for writing: " + path);
  fn(out);
  // Close before returning so a failure while the OS flushes (disk full,
  // quota) is reported here instead of being swallowed by the destructor.
  out.close();
  if (!out) throw util::IoError("write failed (close): " + path);
}

}  // namespace

void write_csv_file(const std::string& path, const TraceSet& trace) {
  with_ofstream(path, [&](std::ostream& out) { write_csv(out, trace); });
}

TraceSet read_csv_file(const std::string& path) {
  TraceReader reader(path, TraceFormat::kCsv);
  return reader.read_all();
}

void write_binary_file(const std::string& path, const TraceSet& trace) {
  with_ofstream(path, [&](std::ostream& out) { write_binary(out, trace); });
}

void write_binary_columnar_file(const std::string& path, const TraceSet& trace) {
  with_ofstream(path, [&](std::ostream& out) { write_binary_columnar(out, trace); });
}

TraceSet read_binary_file(const std::string& path) {
  TraceReader reader(path, TraceFormat::kBinary);
  return reader.read_all();
}

}  // namespace tradeplot::netflow
