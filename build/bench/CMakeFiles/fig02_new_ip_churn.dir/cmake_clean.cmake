file(REMOVE_RECURSE
  "CMakeFiles/fig02_new_ip_churn.dir/fig02_new_ip_churn.cpp.o"
  "CMakeFiles/fig02_new_ip_churn.dir/fig02_new_ip_churn.cpp.o.d"
  "fig02_new_ip_churn"
  "fig02_new_ip_churn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig02_new_ip_churn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
