# Empty dependencies file for fig12_evasion_delay.
# This may be replaced when dependencies are built.
