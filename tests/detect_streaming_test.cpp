#include "detect/streaming.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "botnet/honeynet.h"
#include "eval/day.h"
#include "util/error.h"

namespace tradeplot::detect {
namespace {

bool is_internal(simnet::Ipv4 ip) { return default_internal_predicate(ip); }

netflow::FlowRecord flow(simnet::Ipv4 src, simnet::Ipv4 dst, double start,
                         std::uint64_t bytes = 100) {
  netflow::FlowRecord r;
  r.src = src;
  r.dst = dst;
  r.start_time = start;
  r.end_time = start + 1;
  r.bytes_src = bytes;
  r.pkts_src = 1;
  r.pkts_dst = 1;
  return r;
}

StreamingConfig config(double window = 100.0) {
  StreamingConfig c;
  c.window = window;
  c.is_internal = is_internal;
  return c;
}

TEST(StreamingDetector, ValidatesConfig) {
  const auto sink = [](const WindowVerdict&) {};
  EXPECT_THROW(StreamingDetector(StreamingConfig{}, sink), util::ConfigError);
  StreamingConfig bad = config();
  bad.window = 0;
  EXPECT_THROW(StreamingDetector(bad, sink), util::ConfigError);
  EXPECT_THROW(StreamingDetector(config(), nullptr), util::ConfigError);
}

TEST(StreamingDetector, EmitsOneVerdictPerWindow) {
  std::vector<WindowVerdict> verdicts;
  StreamingDetector detector(config(100.0),
                             [&](const WindowVerdict& v) { verdicts.push_back(v); });
  const simnet::Ipv4 host(128, 2, 0, 1);
  detector.ingest(flow(host, simnet::Ipv4(1, 1, 1, 1), 10));
  detector.ingest(flow(host, simnet::Ipv4(1, 1, 1, 2), 50));
  detector.ingest(flow(host, simnet::Ipv4(1, 1, 1, 3), 150));  // rolls window 0
  detector.ingest(flow(host, simnet::Ipv4(1, 1, 1, 4), 260));  // rolls window 1
  detector.flush();                                            // emits window 2
  ASSERT_EQ(verdicts.size(), 3u);
  EXPECT_EQ(verdicts[0].flows_seen, 2u);
  EXPECT_DOUBLE_EQ(verdicts[0].window_start, 0.0);
  EXPECT_DOUBLE_EQ(verdicts[0].window_end, 100.0);
  EXPECT_EQ(verdicts[1].flows_seen, 1u);
  EXPECT_EQ(verdicts[2].flows_seen, 1u);
  EXPECT_EQ(verdicts[2].window_index, 2u);
}

TEST(StreamingDetector, LongGapsEmitEmptyWindows) {
  std::vector<WindowVerdict> verdicts;
  StreamingDetector detector(config(100.0),
                             [&](const WindowVerdict& v) { verdicts.push_back(v); });
  const simnet::Ipv4 host(128, 2, 0, 1);
  detector.ingest(flow(host, simnet::Ipv4(1, 1, 1, 1), 10));
  detector.ingest(flow(host, simnet::Ipv4(1, 1, 1, 2), 350));
  detector.flush();
  ASSERT_EQ(verdicts.size(), 4u);  // windows [0,100), [100,200), [200,300), [300,400)
  EXPECT_EQ(verdicts[1].flows_seen, 0u);
  EXPECT_EQ(verdicts[2].flows_seen, 0u);
}

TEST(StreamingDetector, FirstWindowAlignsToMultipleOfD) {
  std::vector<WindowVerdict> verdicts;
  StreamingDetector detector(config(100.0),
                             [&](const WindowVerdict& v) { verdicts.push_back(v); });
  detector.ingest(flow(simnet::Ipv4(128, 2, 0, 1), simnet::Ipv4(1, 1, 1, 1), 567.0));
  detector.flush();
  ASSERT_EQ(verdicts.size(), 1u);
  EXPECT_DOUBLE_EQ(verdicts[0].window_start, 500.0);
}

TEST(StreamingDetector, MatchesBatchExtractorOnOrderedTrace) {
  // A streaming pass over one window must produce the same features as the
  // batch extractor for in-order flows.
  const auto storm_cfg = [] {
    botnet::HoneynetConfig h;
    h.seed = 3;
    h.duration = 1800.0;
    h.nugache_bots = 0;
    return h;
  }();
  const netflow::TraceSet trace = botnet::generate_storm_trace(storm_cfg);

  FeatureMap streamed;
  StreamingConfig cfg = config(3600.0);
  StreamingDetector detector(cfg, [&](const WindowVerdict&) {});
  // Capture features via a custom sink is not possible (result only), so
  // compare through the pipeline result instead: run both paths.
  std::vector<FindPlottersResult> results;
  StreamingDetector detector2(cfg, [&](const WindowVerdict& v) { results.push_back(v.result); });
  for (const auto& rec : trace.flows()) detector2.ingest(rec);
  detector2.flush();

  FeatureExtractorConfig fx;
  fx.is_internal = is_internal;
  const FeatureMap batch = extract_features(trace, fx);
  const FindPlottersResult batch_result = find_plotters(batch);

  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0].input, batch_result.input);
  EXPECT_EQ(results[0].reduced, batch_result.reduced);
  EXPECT_EQ(results[0].s_vol, batch_result.s_vol);
  EXPECT_EQ(results[0].s_churn, batch_result.s_churn);
  EXPECT_EQ(results[0].plotters, batch_result.plotters);
}

TEST(StreamingDetector, ParityWithBatchOnOverlaidDay) {
  // The streaming path must reach the same verdict as the batch pipeline
  // on a full overlaid day whose flows arrive in time order.
  botnet::HoneynetConfig honeynet;
  honeynet.seed = 11;
  honeynet.duration = 2 * 3600.0;
  const netflow::TraceSet storm = botnet::generate_storm_trace(honeynet);
  const netflow::TraceSet empty;
  trace::CampusConfig campus;
  campus.seed = 11;
  campus.window = 2 * 3600.0;
  campus.web_clients = 150;
  campus.idle_hosts = 50;
  campus.gnutella_hosts = 5;
  campus.emule_hosts = 5;
  campus.bittorrent_hosts = 8;
  const eval::DayData day = eval::make_day(campus, storm, empty, 0);
  const FindPlottersResult batch = find_plotters(day.features);

  StreamingConfig cfg = config(2 * 3600.0);
  std::vector<WindowVerdict> verdicts;
  StreamingDetector detector(cfg, [&](const WindowVerdict& v) { verdicts.push_back(v); });
  for (const auto& rec : day.combined.flows()) detector.ingest(rec);
  detector.flush();

  ASSERT_EQ(verdicts.size(), 1u);
  EXPECT_EQ(verdicts[0].flows_seen, day.combined.flows().size());
  EXPECT_EQ(verdicts[0].result.input, batch.input);
  EXPECT_EQ(verdicts[0].result.reduced, batch.reduced);
  EXPECT_EQ(verdicts[0].result.vol_or_churn, batch.vol_or_churn);
  EXPECT_EQ(verdicts[0].result.plotters, batch.plotters);
}

}  // namespace
}  // namespace tradeplot::detect
