#include "obs/exposition.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "obs/metrics.h"
#include "util/error.h"

namespace tradeplot::obs {
namespace {

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

TEST(ObsExpositionFormat, ParsesKnownNamesRejectsOthers) {
  EXPECT_EQ(exposition_format_from_string("prom"), ExpositionFormat::kPrometheus);
  EXPECT_EQ(exposition_format_from_string("prometheus"),
            ExpositionFormat::kPrometheus);
  EXPECT_EQ(exposition_format_from_string("json"), ExpositionFormat::kJson);
  EXPECT_THROW(exposition_format_from_string("xml"), util::ConfigError);
  EXPECT_THROW(exposition_format_from_string(""), util::ConfigError);
  EXPECT_EQ(to_string(ExpositionFormat::kPrometheus), "prom");
  EXPECT_EQ(to_string(ExpositionFormat::kJson), "json");
}

TEST(ObsPrometheus, CounterAndGaugeGolden) {
  Registry r;
  r.counter("tp_req_total", "Total requests", {{"method", "get"}}).add(3);
  r.gauge("tp_depth", "Queue depth").set(2.5);
  EXPECT_EQ(to_prometheus(r.snapshot()),
            "# HELP tp_depth Queue depth\n"
            "# TYPE tp_depth gauge\n"
            "tp_depth 2.5\n"
            "# HELP tp_req_total Total requests\n"
            "# TYPE tp_req_total counter\n"
            "tp_req_total{method=\"get\"} 3\n");
}

TEST(ObsPrometheus, HistogramBucketsAreCumulativeWithInf) {
  Registry r;
  Histogram& h = r.histogram("tp_lat_seconds", "Latency", {0.5, 2.0});
  h.observe(0.25);
  h.observe(1.0);
  h.observe(5.0);
  EXPECT_EQ(to_prometheus(r.snapshot()),
            "# HELP tp_lat_seconds Latency\n"
            "# TYPE tp_lat_seconds histogram\n"
            "tp_lat_seconds_bucket{le=\"0.5\"} 1\n"
            "tp_lat_seconds_bucket{le=\"2\"} 2\n"
            "tp_lat_seconds_bucket{le=\"+Inf\"} 3\n"
            "tp_lat_seconds_sum 6.25\n"
            "tp_lat_seconds_count 3\n");
}

TEST(ObsPrometheus, FamilyHeaderEmittedOncePerRun) {
  Registry r;
  r.counter("tp_multi_total", "help", {{"op", "a"}}).add(1);
  r.counter("tp_multi_total", "help", {{"op", "b"}}).add(2);
  const std::string text = to_prometheus(r.snapshot());
  EXPECT_EQ(text,
            "# HELP tp_multi_total help\n"
            "# TYPE tp_multi_total counter\n"
            "tp_multi_total{op=\"a\"} 1\n"
            "tp_multi_total{op=\"b\"} 2\n");
}

TEST(ObsPrometheus, EscapesLabelValuesAndHelp) {
  Registry r;
  r.counter("tp_esc_total", "line1\nline2 back\\slash",
            {{"path", "a\\b\"c\nd"}})
      .add(1);
  EXPECT_EQ(to_prometheus(r.snapshot()),
            "# HELP tp_esc_total line1\\nline2 back\\\\slash\n"
            "# TYPE tp_esc_total counter\n"
            "tp_esc_total{path=\"a\\\\b\\\"c\\nd\"} 1\n");
}

TEST(ObsJson, CounterGolden) {
  Registry r;
  r.counter("tp_req_total", "Total requests", {{"method", "get"}}).add(3);
  EXPECT_EQ(to_json(r.snapshot()), R"({
  "metrics": [
    {
      "name": "tp_req_total",
      "help": "Total requests",
      "type": "counter",
      "labels": {
        "method": "get"
      },
      "value": 3
    }
  ]
})"
                                       "\n");
}

TEST(ObsJson, HistogramBucketsCumulativeAndLeIsAString) {
  Registry r;
  Histogram& h = r.histogram("tp_lat_seconds", "Latency", {0.5, 2.0});
  h.observe(0.25);
  h.observe(1.0);
  h.observe(5.0);
  EXPECT_EQ(to_json(r.snapshot()), R"({
  "metrics": [
    {
      "name": "tp_lat_seconds",
      "help": "Latency",
      "type": "histogram",
      "labels": {},
      "count": 3,
      "sum": 6.25,
      "buckets": [
        {
          "le": "0.5",
          "count": 1
        },
        {
          "le": "2",
          "count": 2
        },
        {
          "le": "+Inf",
          "count": 3
        }
      ]
    }
  ]
})"
                                       "\n");
}

TEST(ObsExposition, WriteSnapshotStreamMatchesRenderers) {
  Registry r;
  r.counter("tp_s_total", "help").add(9);
  const MetricsSnapshot snap = r.snapshot();
  std::ostringstream prom;
  write_snapshot(prom, snap, ExpositionFormat::kPrometheus);
  EXPECT_EQ(prom.str(), to_prometheus(snap));
  std::ostringstream json;
  write_snapshot(json, snap, ExpositionFormat::kJson);
  EXPECT_EQ(json.str(), to_json(snap));
}

TEST(ObsExposition, WriteSnapshotFileIsAtomicAndComplete) {
  Registry r;
  r.counter("tp_file_total", "help").add(4);
  const MetricsSnapshot snap = r.snapshot();
  const std::string path =
      testing::TempDir() + "tp_obs_exposition_test_metrics.prom";
  write_snapshot_file(path, snap, ExpositionFormat::kPrometheus);
  EXPECT_EQ(slurp(path), to_prometheus(snap));
  // The temporary sibling must not survive a successful write.
  EXPECT_FALSE(std::ifstream(path + ".tmp").good());
  // Overwrite in JSON; the old content must be fully replaced.
  write_snapshot_file(path, snap, ExpositionFormat::kJson);
  EXPECT_EQ(slurp(path), to_json(snap));
  std::remove(path.c_str());
}

TEST(ObsExposition, WriteSnapshotFileThrowsOnUnwritablePath) {
  Registry r;
  r.counter("tp_bad_total", "help").add(1);
  EXPECT_THROW(write_snapshot_file("/nonexistent-dir/metrics.prom", r.snapshot(),
                                   ExpositionFormat::kPrometheus),
               util::IoError);
}

TEST(ObsPrometheus, NonFiniteValuesSpelledOut) {
  MetricsSnapshot snap;
  SnapshotSample s;
  s.name = "tp_inf";
  s.help = "h";
  s.type = MetricType::kGauge;
  s.value = std::numeric_limits<double>::infinity();
  snap.samples.push_back(s);
  EXPECT_EQ(to_prometheus(snap),
            "# HELP tp_inf h\n# TYPE tp_inf gauge\ntp_inf +Inf\n");
}

}  // namespace
}  // namespace tradeplot::obs
