# Empty compiler generated dependencies file for tp_trace.
# This may be replaced when dependencies are built.
