# Empty dependencies file for fig09_funnel.
# This may be replaced when dependencies are built.
