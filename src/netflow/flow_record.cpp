#include "netflow/flow_record.h"

#include <algorithm>
#include <cstring>

#include "util/error.h"

namespace tradeplot::netflow {

std::string_view to_string(Protocol p) {
  switch (p) {
    case Protocol::kTcp: return "tcp";
    case Protocol::kUdp: return "udp";
    case Protocol::kIcmp: return "icmp";
  }
  return "?";
}

Protocol protocol_from_string(std::string_view s) {
  if (s == "tcp") return Protocol::kTcp;
  if (s == "udp") return Protocol::kUdp;
  if (s == "icmp") return Protocol::kIcmp;
  throw util::ParseError("unknown protocol '" + std::string(s) + "'");
}

std::string_view to_string(FlowState s) {
  switch (s) {
    case FlowState::kEstablished: return "est";
    case FlowState::kAttempted: return "att";
    case FlowState::kReset: return "rst";
    case FlowState::kIcmpUnreach: return "unr";
  }
  return "?";
}

FlowState flow_state_from_string(std::string_view s) {
  if (s == "est") return FlowState::kEstablished;
  if (s == "att") return FlowState::kAttempted;
  if (s == "rst") return FlowState::kReset;
  if (s == "unr") return FlowState::kIcmpUnreach;
  throw util::ParseError("unknown flow state '" + std::string(s) + "'");
}

void FlowRecord::set_payload(std::string_view data) {
  const std::size_t n = std::min(data.size(), kPayloadPrefixLen);
  payload.fill(0);
  if (n != 0) std::memcpy(payload.data(), data.data(), n);
  payload_len = static_cast<std::uint8_t>(n);
}

FlowBuilder& FlowBuilder::from(simnet::Ipv4 src, std::uint16_t sport) {
  rec_.src = src;
  rec_.sport = sport;
  return *this;
}

FlowBuilder& FlowBuilder::to(simnet::Ipv4 dst, std::uint16_t dport) {
  rec_.dst = dst;
  rec_.dport = dport;
  return *this;
}

FlowBuilder& FlowBuilder::proto(Protocol p) {
  rec_.proto = p;
  return *this;
}

FlowBuilder& FlowBuilder::at(double start, double duration) {
  rec_.start_time = start;
  rec_.end_time = start + (duration > 0 ? duration : 0);
  return *this;
}

FlowBuilder& FlowBuilder::transfer(std::uint64_t bytes_up, std::uint64_t bytes_down) {
  rec_.bytes_src = bytes_up;
  rec_.bytes_dst = bytes_down;
  constexpr std::uint64_t kMss = 1460;
  rec_.pkts_src = bytes_up / kMss + 1;
  rec_.pkts_dst = bytes_down > 0 ? bytes_down / kMss + 1 : 0;
  return *this;
}

FlowBuilder& FlowBuilder::state(FlowState s) {
  rec_.state = s;
  explicit_state_ = true;
  return *this;
}

FlowBuilder& FlowBuilder::payload(std::string_view data) {
  rec_.set_payload(data);
  return *this;
}

FlowRecord FlowBuilder::build() const {
  FlowRecord out = rec_;
  if (!explicit_state_) {
    out.state = out.pkts_dst > 0 ? FlowState::kEstablished : FlowState::kAttempted;
  }
  if (out.state != FlowState::kEstablished) {
    // A failed connection never transferred responder payload; for TCP the
    // initiator's SYN(s) carry no payload either.
    out.bytes_dst = 0;
    out.pkts_dst = out.state == FlowState::kReset ? 1 : 0;
    if (out.proto == Protocol::kTcp) {
      out.bytes_src = 0;
      out.pkts_src = std::max<std::uint64_t>(out.pkts_src, 1);
      out.payload_len = 0;
      out.payload.fill(0);
    }
  } else if (out.proto == Protocol::kTcp) {
    // Account for handshake + teardown control packets.
    out.pkts_src += 2;
    out.pkts_dst += 2;
  }
  return out;
}

}  // namespace tradeplot::netflow
