#include "stats/hcluster.h"

#include <algorithm>
#include <cmath>
#include <functional>
#include <limits>
#include <numeric>

#include "util/error.h"

namespace tradeplot::stats {

Dendrogram::Dendrogram(std::size_t leaves, std::vector<Merge> merges)
    : leaves_(leaves), merges_(std::move(merges)) {
  if (leaves_ == 0) throw util::ConfigError("dendrogram with no leaves");
  if (merges_.size() + 1 != leaves_ && !(leaves_ == 1 && merges_.empty()))
    throw util::ConfigError("dendrogram must have exactly n-1 merges");
}

std::vector<std::vector<std::size_t>> Dendrogram::components(
    const std::vector<bool>& keep_merge) const {
  // Union-find over leaves; apply kept merges only.
  std::vector<std::size_t> parent(leaves_ + merges_.size());
  std::iota(parent.begin(), parent.end(), 0);
  const std::function<std::size_t(std::size_t)> find = [&](std::size_t x) {
    while (parent[x] != x) {
      parent[x] = parent[parent[x]];
      x = parent[x];
    }
    return x;
  };
  // Internal node n+k represents the k-th merge; map each node to the leaf
  // component it currently roots. A cut link detaches the child subtree.
  // Approach: process merges in order; for a kept merge, union the two child
  // component roots and record them under the internal node's slot. For a
  // cut merge, leave children separate but still give the internal node a
  // representative (its left child) so later merges referencing it resolve.
  std::vector<std::size_t> rep(leaves_ + merges_.size());
  std::iota(rep.begin(), rep.end(), 0);
  for (std::size_t k = 0; k < merges_.size(); ++k) {
    const Merge& m = merges_[k];
    const std::size_t a = find(rep[m.left]);
    const std::size_t b = find(rep[m.right]);
    if (keep_merge[k]) {
      parent[b] = a;
      rep[leaves_ + k] = a;
    } else {
      rep[leaves_ + k] = a;  // arbitrary; the link itself is severed
    }
  }
  std::vector<std::vector<std::size_t>> groups;
  std::vector<int> group_of(leaves_ + merges_.size(), -1);
  for (std::size_t leaf = 0; leaf < leaves_; ++leaf) {
    const std::size_t root = find(leaf);
    if (group_of[root] < 0) {
      group_of[root] = static_cast<int>(groups.size());
      groups.emplace_back();
    }
    groups[static_cast<std::size_t>(group_of[root])].push_back(leaf);
  }
  for (auto& g : groups) std::sort(g.begin(), g.end());
  std::sort(groups.begin(), groups.end(),
            [](const auto& a, const auto& b) { return a.front() < b.front(); });
  return groups;
}

std::vector<std::vector<std::size_t>> Dendrogram::cut_top_fraction(double fraction) const {
  if (fraction < 0.0 || fraction > 1.0)
    throw util::ConfigError("cut fraction must be in [0,1]");
  const std::size_t links = merges_.size();
  const auto to_cut = static_cast<std::size_t>(std::ceil(fraction * static_cast<double>(links)));
  // Indices of the `to_cut` merges with the largest heights (ties: later
  // merges cut first, matching the intuition that higher merges are weaker).
  std::vector<std::size_t> order(links);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [this](std::size_t a, std::size_t b) {
    if (merges_[a].height != merges_[b].height) return merges_[a].height > merges_[b].height;
    return a > b;
  });
  std::vector<bool> keep(links, true);
  for (std::size_t i = 0; i < to_cut && i < links; ++i) keep[order[i]] = false;
  return components(keep);
}

std::vector<std::vector<std::size_t>> Dendrogram::cut_at_height(double threshold) const {
  std::vector<bool> keep(merges_.size());
  for (std::size_t k = 0; k < merges_.size(); ++k) keep[k] = merges_[k].height <= threshold;
  return components(keep);
}

Dendrogram agglomerative_average_linkage(std::span<const double> distances, std::size_t n) {
  if (n == 0) throw util::ConfigError("clustering zero items");
  if (distances.size() != n * n) throw util::ConfigError("distance matrix size mismatch");
  if (n == 1) return Dendrogram(1, {});

  // Working copy of the distance matrix; clusters are "active" slots.
  std::vector<double> d(distances.begin(), distances.end());
  std::vector<std::size_t> size(n, 1);
  std::vector<bool> active(n, true);
  // node_id[i]: dendrogram node currently represented by slot i.
  std::vector<std::size_t> node_id(n);
  std::iota(node_id.begin(), node_id.end(), 0);

  const auto dist = [&](std::size_t a, std::size_t b) -> double& { return d[a * n + b]; };

  std::vector<Merge> merges;
  merges.reserve(n - 1);

  // Nearest-neighbour chain: average linkage is reducible, so following
  // nearest neighbours until a reciprocal pair is found yields the exact
  // UPGMA merge order in O(n^2) total.
  std::vector<std::size_t> chain;
  chain.reserve(n);
  std::size_t remaining = n;
  while (remaining > 1) {
    if (chain.empty()) {
      for (std::size_t i = 0; i < n; ++i)
        if (active[i]) {
          chain.push_back(i);
          break;
        }
    }
    for (;;) {
      const std::size_t top = chain.back();
      // Nearest active neighbour of `top` (prefer the previous chain element
      // on ties so reciprocal pairs terminate the walk).
      std::size_t nearest = top;
      double best = std::numeric_limits<double>::max();
      const std::size_t prev = chain.size() >= 2 ? chain[chain.size() - 2] : n;
      for (std::size_t j = 0; j < n; ++j) {
        if (!active[j] || j == top) continue;
        const double dj = dist(top, j);
        if (dj < best - 1e-15 || (std::abs(dj - best) <= 1e-15 && j == prev)) {
          best = dj;
          nearest = j;
        }
      }
      if (chain.size() >= 2 && nearest == chain[chain.size() - 2]) {
        // Reciprocal nearest neighbours: merge top and nearest.
        const std::size_t a = chain[chain.size() - 2];
        const std::size_t b = top;
        chain.pop_back();
        chain.pop_back();
        const double height = dist(a, b);
        merges.push_back(Merge{node_id[a], node_id[b], height, size[a] + size[b]});
        // Lance-Williams UPGMA update into slot a.
        for (std::size_t k = 0; k < n; ++k) {
          if (!active[k] || k == a || k == b) continue;
          const double na = static_cast<double>(size[a]);
          const double nb = static_cast<double>(size[b]);
          const double merged = (na * dist(a, k) + nb * dist(b, k)) / (na + nb);
          dist(a, k) = merged;
          dist(k, a) = merged;
        }
        size[a] += size[b];
        active[b] = false;
        node_id[a] = n + merges.size() - 1;
        --remaining;
        break;
      }
      chain.push_back(nearest);
    }
  }
  // The NN-chain discovers merges in an order that is not globally sorted by
  // height (only locally reducible). Downstream cuts assume height order, so
  // sort and remap internal node ids to the new positions.
  std::vector<std::size_t> order(merges.size());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return merges[a].height < merges[b].height;
  });
  std::vector<std::size_t> new_pos(merges.size());
  for (std::size_t pos = 0; pos < order.size(); ++pos) new_pos[order[pos]] = pos;
  std::vector<Merge> sorted;
  sorted.reserve(merges.size());
  for (const std::size_t old_idx : order) {
    Merge m = merges[old_idx];
    if (m.left >= n) m.left = n + new_pos[m.left - n];
    if (m.right >= n) m.right = n + new_pos[m.right - n];
    sorted.push_back(m);
  }
  return Dendrogram(n, std::move(sorted));
}

double cluster_diameter(std::span<const double> distances, std::size_t n,
                        std::span<const std::size_t> members) {
  double diameter = 0.0;
  for (std::size_t i = 0; i < members.size(); ++i) {
    for (std::size_t j = i + 1; j < members.size(); ++j) {
      diameter = std::max(diameter, distances[members[i] * n + members[j]]);
    }
  }
  return diameter;
}

}  // namespace tradeplot::stats
