#include "p2p/node_id.h"

#include <array>
#include <bit>
#include <cstdio>

namespace tradeplot::p2p {

NodeId NodeId::random(util::Pcg32& rng) {
  const auto word = [&rng] {
    return (static_cast<std::uint64_t>(rng()) << 32) | rng();
  };
  return NodeId(word(), word());
}

NodeId NodeId::hash(std::string_view data) {
  // Two FNV-1a passes with different offset bases give 128 bits.
  constexpr std::uint64_t kPrime = 0x100000001b3ULL;
  std::uint64_t h1 = 0xcbf29ce484222325ULL;
  std::uint64_t h2 = 0x84222325cbf29ce4ULL;
  for (const char c : data) {
    h1 = (h1 ^ static_cast<unsigned char>(c)) * kPrime;
    h2 = (h2 ^ static_cast<unsigned char>(c)) * kPrime;
    h2 = (h2 ^ (h2 >> 29)) * 0xbf58476d1ce4e5b9ULL;
  }
  return NodeId(h1, h2);
}

int NodeId::highest_bit() const {
  if (hi_ != 0) return 127 - std::countl_zero(hi_);
  if (lo_ != 0) return 63 - std::countl_zero(lo_);
  return -1;
}

std::string NodeId::to_hex() const {
  std::array<char, 36> buf{};
  std::snprintf(buf.data(), buf.size(), "%016llx%016llx",
                static_cast<unsigned long long>(hi_), static_cast<unsigned long long>(lo_));
  return std::string(buf.data());
}

}  // namespace tradeplot::p2p
