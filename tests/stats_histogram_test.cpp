#include "stats/histogram.h"

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "util/error.h"
#include "util/rng.h"

namespace tradeplot::stats {
namespace {

TEST(FreedmanDiaconis, MatchesFormula) {
  // Samples 1..8: IQR = 6.25 - 2.75 = 3.5 under linear interpolation.
  const std::vector<double> xs = {1, 2, 3, 4, 5, 6, 7, 8};
  const double expected = 2.0 * 3.5 * std::pow(8.0, -1.0 / 3.0);
  EXPECT_NEAR(freedman_diaconis_width(xs), expected, 1e-12);
}

TEST(FreedmanDiaconis, ZeroIqrFallsBackToRange) {
  // Heavily repeated central value: IQR 0, range 10.
  std::vector<double> xs(100, 5.0);
  xs.front() = 0.0;
  xs.back() = 10.0;
  EXPECT_NEAR(freedman_diaconis_width(xs), 10.0 / 10.0, 1e-12);  // range/sqrt(n)
}

TEST(FreedmanDiaconis, AllEqualSamplesGiveUnitWidth) {
  const std::vector<double> xs(50, 3.3);
  EXPECT_DOUBLE_EQ(freedman_diaconis_width(xs), 1.0);
}

TEST(FreedmanDiaconis, EmptyThrows) {
  EXPECT_THROW((void)freedman_diaconis_width(std::vector<double>{}), util::ConfigError);
}

TEST(Histogram, CountsLandInCorrectBins) {
  const std::vector<double> xs = {0.0, 0.5, 1.0, 1.5, 2.0};
  const Histogram h(xs, 1.0);
  EXPECT_DOUBLE_EQ(h.origin(), 0.0);
  ASSERT_EQ(h.bin_count(), 3u);
  EXPECT_EQ(h.count(0), 2u);  // 0.0, 0.5
  EXPECT_EQ(h.count(1), 2u);  // 1.0, 1.5
  EXPECT_EQ(h.count(2), 1u);  // 2.0 (max lands in last bin)
  EXPECT_EQ(h.total_count(), 5u);
}

TEST(Histogram, BinCenters) {
  const Histogram h(std::vector<double>{10.0, 12.0}, 2.0);
  EXPECT_DOUBLE_EQ(h.bin_center(0), 11.0);
  EXPECT_DOUBLE_EQ(h.bin_center(1), 13.0);
}

TEST(Histogram, PmfSumsToOne) {
  util::Pcg32 rng(1);
  std::vector<double> xs(1000);
  for (double& x : xs) x = rng.lognormal(1.0, 1.0);
  const Histogram h = Histogram::with_fd_width(xs);
  const auto pmf = h.pmf();
  const double sum = std::accumulate(pmf.begin(), pmf.end(), 0.0);
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(Histogram, SignatureOmitsEmptyBinsAndSumsToOne) {
  const std::vector<double> xs = {0.0, 10.0};
  const Histogram h(xs, 1.0);
  const Signature sig = h.signature();
  ASSERT_EQ(sig.size(), 2u);
  EXPECT_DOUBLE_EQ(sig[0].weight + sig[1].weight, 1.0);
  EXPECT_DOUBLE_EQ(sig[0].position, 0.5);
  // 10.0 is the max sample; it lands in the last bin.
  EXPECT_GT(sig[1].position, 9.0);
}

TEST(Histogram, IndexSignaturePositionsAreBinIndices) {
  const std::vector<double> xs = {0.0, 5.0, 10.0};
  const Histogram h(xs, 5.0);
  const Signature sig = h.index_signature();
  ASSERT_EQ(sig.size(), 3u);
  EXPECT_DOUBLE_EQ(sig[0].position, 0.0);
  EXPECT_DOUBLE_EQ(sig[1].position, 1.0);
  EXPECT_DOUBLE_EQ(sig[2].position, 2.0);
}

TEST(Histogram, TinyWidthIsCappedNotExploded) {
  // A pathological width request must not allocate unbounded memory.
  const std::vector<double> xs = {0.0, 1e9};
  const Histogram h(xs, 1e-9);
  EXPECT_LE(h.bin_count(), 1u << 20);
  EXPECT_EQ(h.total_count(), 2u);
}

TEST(Histogram, Errors) {
  EXPECT_THROW(Histogram(std::vector<double>{}, 1.0), util::ConfigError);
  EXPECT_THROW(Histogram(std::vector<double>{1.0}, 0.0), util::ConfigError);
  EXPECT_THROW(Histogram(std::vector<double>{1.0}, -1.0), util::ConfigError);
}

// Property: total mass is conserved for random sample sets and widths.
class HistogramMass : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(HistogramMass, CountsSumToSampleSize) {
  util::Pcg32 rng(GetParam());
  const auto n = static_cast<std::size_t>(rng.uniform_int(1, 5000));
  std::vector<double> xs(n);
  for (double& x : xs) x = rng.uniform(-100, 100);
  const Histogram h = Histogram::with_fd_width(xs);
  std::uint64_t total = 0;
  for (std::size_t i = 0; i < h.bin_count(); ++i) total += h.count(i);
  EXPECT_EQ(total, n);
}

INSTANTIATE_TEST_SUITE_P(Seeds, HistogramMass, ::testing::Values(1, 2, 3, 4, 5, 6));

}  // namespace
}  // namespace tradeplot::stats
