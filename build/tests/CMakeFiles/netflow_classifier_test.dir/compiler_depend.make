# Empty compiler generated dependencies file for netflow_classifier_test.
# This may be replaced when dependencies are built.
