#include "stats/emd.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>

#include "util/error.h"
#include "util/rng.h"

namespace tradeplot::stats {
namespace {

Signature sig(std::initializer_list<SignaturePoint> points) { return Signature(points); }

TEST(Emd1d, IdenticalDistributionsHaveZeroDistance) {
  const Signature a = sig({{1.0, 0.5}, {3.0, 0.5}});
  EXPECT_DOUBLE_EQ(emd_1d(a, a), 0.0);
}

TEST(Emd1d, PointMassesDistanceIsPositionGap) {
  const Signature a = sig({{0.0, 1.0}});
  const Signature b = sig({{7.5, 1.0}});
  EXPECT_DOUBLE_EQ(emd_1d(a, b), 7.5);
}

TEST(Emd1d, KnownSplitMassValue) {
  // Half the mass moves 2, half stays: EMD = 1.
  const Signature a = sig({{0.0, 0.5}, {2.0, 0.5}});
  const Signature b = sig({{2.0, 1.0}});
  EXPECT_DOUBLE_EQ(emd_1d(a, b), 1.0);
}

TEST(Emd1d, ShiftEqualsOffset) {
  const Signature a = sig({{1.0, 0.3}, {2.0, 0.4}, {5.0, 0.3}});
  Signature b = a;
  for (auto& p : b) p.position += 10.0;
  EXPECT_NEAR(emd_1d(a, b), 10.0, 1e-12);
}

TEST(Emd1d, Symmetric) {
  const Signature a = sig({{0.0, 0.7}, {4.0, 0.3}});
  const Signature b = sig({{1.0, 0.2}, {3.0, 0.8}});
  EXPECT_DOUBLE_EQ(emd_1d(a, b), emd_1d(b, a));
}

TEST(Emd1d, NormalizesUnequalMass) {
  // Same shape at different total mass must compare equal.
  const Signature a = sig({{0.0, 2.0}, {1.0, 2.0}});
  const Signature b = sig({{0.0, 0.5}, {1.0, 0.5}});
  EXPECT_NEAR(emd_1d(a, b), 0.0, 1e-12);
}

TEST(Emd1d, UnsortedInputHandled) {
  const Signature a = sig({{5.0, 0.5}, {0.0, 0.5}});
  const Signature b = sig({{0.0, 0.5}, {5.0, 0.5}});
  EXPECT_DOUBLE_EQ(emd_1d(a, b), 0.0);
}

TEST(Emd1d, Errors) {
  const Signature ok = sig({{0.0, 1.0}});
  EXPECT_THROW((void)emd_1d({}, ok), util::ConfigError);
  EXPECT_THROW((void)emd_1d(ok, sig({{0.0, 0.0}})), util::ConfigError);
  EXPECT_THROW((void)emd_1d(ok, sig({{0.0, -1.0}})), util::ConfigError);
}

TEST(EmdTransport, MatchesClosedFormOnPointMasses) {
  const Signature a = sig({{0.0, 1.0}});
  const Signature b = sig({{3.0, 1.0}});
  EXPECT_NEAR(emd_transport(a, b), 3.0, 1e-9);
}

TEST(EmdTransport, CustomGroundDistance) {
  const Signature a = sig({{0.0, 1.0}});
  const Signature b = sig({{3.0, 1.0}});
  const double squared = emd_transport(a, b, [](double x, double y) {
    return (x - y) * (x - y);
  });
  EXPECT_NEAR(squared, 9.0, 1e-9);
}

TEST(EmdTransport, RejectsNegativeGroundDistance) {
  const Signature a = sig({{0.0, 1.0}});
  const Signature b = sig({{3.0, 1.0}});
  EXPECT_THROW((void)emd_transport(a, b, [](double, double) { return -1.0; }),
               util::ConfigError);
}

// Property: the min-cost-flow solver and the closed-form 1-D EMD agree on
// random signatures — each validates the other.
class EmdAgreement : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(EmdAgreement, TransportMatchesClosedForm) {
  util::Pcg32 rng(GetParam());
  const auto make = [&rng] {
    Signature s;
    const auto n = static_cast<std::size_t>(rng.uniform_int(1, 12));
    for (std::size_t i = 0; i < n; ++i) {
      s.push_back({rng.uniform(0, 100), rng.uniform(0.05, 1.0)});
    }
    return s;
  };
  for (int trial = 0; trial < 5; ++trial) {
    const Signature a = make();
    const Signature b = make();
    const double closed = emd_1d(a, b);
    const double flow = emd_transport(a, b);
    EXPECT_NEAR(closed, flow, 1e-6 * std::max(1.0, closed));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EmdAgreement, ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 9, 10));

// Property: emd_1d is a metric on normalized signatures (triangle
// inequality, symmetry, identity).
class EmdMetric : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(EmdMetric, TriangleInequalityHolds) {
  util::Pcg32 rng(GetParam());
  const auto make = [&rng] {
    Signature s;
    for (int i = 0; i < 6; ++i) s.push_back({rng.uniform(0, 50), rng.uniform(0.1, 1.0)});
    return s;
  };
  const Signature a = make();
  const Signature b = make();
  const Signature c = make();
  const double ab = emd_1d(a, b);
  const double bc = emd_1d(b, c);
  const double ac = emd_1d(a, c);
  EXPECT_LE(ac, ab + bc + 1e-9);
  EXPECT_DOUBLE_EQ(ab, emd_1d(b, a));
  EXPECT_NEAR(emd_1d(a, a), 0.0, 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Seeds, EmdMetric, ::testing::Values(11, 12, 13, 14, 15, 16));

TEST(PairwiseEmd, ParallelMatrixIsBitIdenticalToSerial) {
  util::Pcg32 rng(17);
  std::vector<Signature> sigs;
  for (int i = 0; i < 40; ++i) {
    Signature s;
    const auto points = static_cast<std::size_t>(rng.uniform_int(3, 20));
    for (std::size_t j = 0; j < points; ++j) {
      s.push_back({rng.uniform(0, 300), rng.uniform(0.05, 1.0)});
    }
    sigs.push_back(std::move(s));
  }
  const std::vector<double> serial = pairwise_emd(sigs, 1);
  for (const std::size_t threads : {1u, 2u, 8u}) {
    const std::vector<double> parallel = pairwise_emd(sigs, threads);
    ASSERT_EQ(parallel.size(), serial.size());
    EXPECT_EQ(0, std::memcmp(parallel.data(), serial.data(), serial.size() * sizeof(double)))
        << threads << " threads";
  }
}

TEST(PairwiseEmd, MatrixIsSymmetricWithZeroDiagonal) {
  util::Pcg32 rng(3);
  std::vector<Signature> sigs;
  for (int i = 0; i < 6; ++i) {
    Signature s;
    for (int j = 0; j < 4; ++j) s.push_back({rng.uniform(0, 20), rng.uniform(0.1, 1.0)});
    sigs.push_back(std::move(s));
  }
  const auto d = pairwise_emd(sigs);
  for (std::size_t i = 0; i < 6; ++i) {
    EXPECT_DOUBLE_EQ(d[i * 6 + i], 0.0);
    for (std::size_t j = 0; j < 6; ++j) EXPECT_DOUBLE_EQ(d[i * 6 + j], d[j * 6 + i]);
  }
}

}  // namespace
}  // namespace tradeplot::stats
