// Interruptible file input for cooperative shutdown.
//
// glibc's libstdc++ retries EINTR inside __basic_file::xsgetn, so a signal
// can never interrupt a blocked std::ifstream read — the errno discipline
// of util/stream_retry.h never gets a chance on a real filebuf, and a
// monitor streaming from a FIFO would sit in read(2) forever after SIGINT.
// The streambuf here issues one ::read(2) per underflow and, when the read
// is interrupted, consults util::shutdown_requested(): a cooperative stop
// surfaces as end-of-stream with errno left at EINTR (read_retry then
// reports a clean short read), any other signal retries the read.
#pragma once

#include <istream>
#include <streambuf>
#include <string>
#include <vector>

namespace tradeplot::util {

/// A read-only streambuf over a POSIX fd. Takes ownership of the fd and
/// closes it on destruction; fd < 0 makes every read report end-of-stream.
class FdInputStreambuf : public std::streambuf {
 public:
  explicit FdInputStreambuf(int fd, std::size_t buffer_size = 1 << 16);
  ~FdInputStreambuf() override;
  FdInputStreambuf(const FdInputStreambuf&) = delete;
  FdInputStreambuf& operator=(const FdInputStreambuf&) = delete;

  [[nodiscard]] bool valid() const noexcept { return fd_ >= 0; }

 protected:
  int_type underflow() override;

 private:
  int fd_;
  std::vector<char> buf_;
};

/// std::istream over ::open(path, O_RDONLY) with the interruptible
/// streambuf above. fail() after construction when the open failed.
class FdInputStream : public std::istream {
 public:
  explicit FdInputStream(const std::string& path);

 private:
  FdInputStreambuf buf_;
};

}  // namespace tradeplot::util
