# Empty dependencies file for fig06_roc_volume.
# This may be replaced when dependencies are built.
