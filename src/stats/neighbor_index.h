// Pruned-neighbor index for the θ_hm clustering path: precomputed leaf-level
// features that back admissible lower bounds on pairwise (and, averaged,
// cluster-pairwise) distances, so the lazy clustering driver can skip the
// exact kernel for pairs that cannot be near.
//
// Two tiers, both true lower bounds of the exact metric:
//
//  * Pivot tier — EMD-1d (and bin-L1) are genuine metrics, so for any pivot
//    leaf p the reverse triangle inequality gives
//        |d(i, p) - d(j, p)| <= d(i, j).
//    The index picks `pivots` leaves by the deterministic farthest-point
//    heuristic (first leaf, then repeatedly the leaf maximising its distance
//    to the chosen set; ties to the lowest index) and stores the exact
//    distance from every leaf to every pivot — n·P exact evaluations that
//    replace up to n(n-1)/2.
//
//  * Grid tier (EMD metrics only) — every signature is snapped onto one
//    shared uniform grid of `grid_bins` cells spanning the population's
//    support. For distributions living on a lattice with spacing g, moving
//    one unit of mass between distinct lattice points costs at least g and
//    reduces the binned L1 discrepancy by at most 2, so
//        EMD(snap(a), snap(b)) >= (g/2) · L1(grid_a, grid_b),
//    and un-snapping costs at most the per-signature snap displacement:
//        EMD(a, b) >= (g/2) · L1(grid_a, grid_b) - snap_a - snap_b.
//    The L1 sweep is a dense, SIMD-friendly loop ~25x cheaper than the exact
//    EMD kernel (see stats/simd.h).
//
// The index never affects values, only which pairs pay the exact kernel —
// see agglomerative_average_linkage_pruned for the exactness contract.
#pragma once

#include <cstddef>
#include <functional>
#include <vector>

#include "stats/flat_signature.h"
#include "stats/hcluster.h"

namespace tradeplot::stats {

class NeighborIndex {
 public:
  /// Exact pairwise metric between leaves i and j. Must be pure and safe to
  /// call concurrently for distinct arguments (the pivot columns are
  /// computed with parallel_for).
  using PairDistanceFn = std::function<double(std::size_t, std::size_t)>;

  /// Builds the pivot tier: selects min(pivots, n) pivot leaves and computes
  /// every leaf's exact distance to each. `threads` follows resolve_threads
  /// semantics; the selection and the distance table are bit-identical for
  /// every thread count (each column entry is an independent pure call).
  NeighborIndex(std::size_t n, const PairDistanceFn& distance, std::size_t pivots,
                std::size_t threads);

  /// Adds the grid tier from preprocessed (normalized, sorted) signatures.
  /// No-op when grid_bins == 0, n == 0, or the population's support spans a
  /// single point (the bound would be vacuous).
  void build_grid(const FlatSignatureSet& flat, std::size_t grid_bins,
                  std::size_t threads);

  /// Borrowed views into the index, in the layout the pruned clustering
  /// driver consumes. Valid while the index is alive.
  [[nodiscard]] PruneFeatures features() const;

  [[nodiscard]] const std::vector<std::size_t>& pivot_leaves() const { return pivot_leaves_; }
  /// Row-major [leaf * pivot_count + p] exact distances.
  [[nodiscard]] const std::vector<double>& pivot_distances() const { return pivot_distances_; }
  [[nodiscard]] std::size_t pivot_count() const { return pivot_leaves_.size(); }
  [[nodiscard]] std::size_t grid_bins() const { return grid_bins_; }

  /// Leaf-level admissible lower bound on d(i, j) — the max of both tiers,
  /// margin-adjusted exactly as the clustering driver applies it. Exposed
  /// for the admissibility property tests.
  [[nodiscard]] double lower_bound(std::size_t i, std::size_t j) const;

 private:
  std::size_t n_;
  std::vector<std::size_t> pivot_leaves_;
  std::vector<double> pivot_distances_;  // n_ x pivot_leaves_.size(), row-major
  std::size_t grid_bins_ = 0;
  double grid_half_width_ = 0.0;
  std::vector<double> grid_;       // n_ x grid_bins_, unit-mass histograms
  std::vector<double> snap_cost_;  // n_
};

}  // namespace tradeplot::stats
