#include "simnet/address.h"

#include <gtest/gtest.h>

#include <set>

#include "util/error.h"

namespace tradeplot::simnet {
namespace {

TEST(Ipv4, RoundTrip) {
  const Ipv4 addr(128, 2, 13, 7);
  EXPECT_EQ(addr.to_string(), "128.2.13.7");
  EXPECT_EQ(Ipv4::parse("128.2.13.7"), addr);
  EXPECT_EQ(Ipv4::parse("0.0.0.0").value(), 0u);
  EXPECT_EQ(Ipv4::parse("255.255.255.255").value(), 0xffffffffu);
}

TEST(Ipv4, ParseRejectsGarbage) {
  EXPECT_THROW((void)Ipv4::parse(""), util::ParseError);
  EXPECT_THROW((void)Ipv4::parse("1.2.3"), util::ParseError);
  EXPECT_THROW((void)Ipv4::parse("256.1.1.1"), util::ParseError);
  EXPECT_THROW((void)Ipv4::parse("1.2.3.4.5"), util::ParseError);
  EXPECT_THROW((void)Ipv4::parse("a.b.c.d"), util::ParseError);
}

TEST(Ipv4, Ordering) {
  EXPECT_LT(Ipv4(1, 0, 0, 0), Ipv4(2, 0, 0, 0));
  EXPECT_LT(Ipv4(1, 0, 0, 1), Ipv4(1, 0, 1, 0));
  EXPECT_EQ(Ipv4(9, 9, 9, 9), Ipv4(9, 9, 9, 9));
}

TEST(Ipv4, HashSpreadsSequentialAddresses) {
  std::hash<Ipv4> h;
  std::set<std::size_t> hashes;
  for (std::uint32_t i = 0; i < 1000; ++i) hashes.insert(h(Ipv4(i)));
  EXPECT_EQ(hashes.size(), 1000u);
}

TEST(Subnet, ContainsAndSize) {
  const Subnet net(Ipv4(128, 2, 0, 0), 16);
  EXPECT_TRUE(net.contains(Ipv4(128, 2, 255, 255)));
  EXPECT_FALSE(net.contains(Ipv4(128, 3, 0, 0)));
  EXPECT_EQ(net.size(), 65536u);
  EXPECT_EQ(net.at(1), Ipv4(128, 2, 0, 1));
  EXPECT_THROW((void)net.at(65536), std::out_of_range);
}

TEST(Subnet, BaseIsMasked) {
  const Subnet net(Ipv4(128, 2, 200, 7), 16);
  EXPECT_EQ(net.base(), Ipv4(128, 2, 0, 0));
  EXPECT_EQ(net.to_string(), "128.2.0.0/16");
}

TEST(Subnet, ParseAndErrors) {
  const Subnet net = Subnet::parse("10.0.0.0/8");
  EXPECT_TRUE(net.contains(Ipv4(10, 200, 1, 1)));
  EXPECT_THROW((void)Subnet::parse("10.0.0.0"), util::ParseError);
  EXPECT_THROW((void)Subnet::parse("10.0.0.0/abc"), util::ParseError);
  EXPECT_THROW(Subnet(Ipv4(1, 2, 3, 4), 33), util::ConfigError);
  EXPECT_THROW(Subnet(Ipv4(1, 2, 3, 4), -1), util::ConfigError);
}

TEST(Subnet, EdgePrefixLengths) {
  const Subnet all(Ipv4(0, 0, 0, 0), 0);
  EXPECT_TRUE(all.contains(Ipv4(255, 255, 255, 255)));
  const Subnet host(Ipv4(1, 2, 3, 4), 32);
  EXPECT_TRUE(host.contains(Ipv4(1, 2, 3, 4)));
  EXPECT_FALSE(host.contains(Ipv4(1, 2, 3, 5)));
  EXPECT_EQ(host.size(), 1u);
}

TEST(SubnetAllocator, SequentialInternalAddressesAreUnique) {
  SubnetAllocator alloc({Subnet(Ipv4(128, 2, 0, 0), 24), Subnet(Ipv4(128, 3, 0, 0), 24)},
                        util::Pcg32(1));
  std::set<Ipv4> seen;
  // 254 usable in the first /24 + 254 in the second.
  for (int i = 0; i < 508; ++i) {
    const Ipv4 addr = alloc.next_internal();
    EXPECT_TRUE(alloc.is_internal(addr));
    EXPECT_TRUE(seen.insert(addr).second) << "duplicate " << addr.to_string();
  }
  EXPECT_THROW((void)alloc.next_internal(), util::Error);
}

TEST(SubnetAllocator, ExternalAvoidsInternalAndReserved) {
  SubnetAllocator alloc({Subnet(Ipv4(128, 2, 0, 0), 16)}, util::Pcg32(2));
  for (int i = 0; i < 2000; ++i) {
    const Ipv4 addr = alloc.random_external();
    EXPECT_FALSE(alloc.is_internal(addr));
    const auto o1 = (addr.value() >> 24) & 0xff;
    EXPECT_NE(o1, 10u);
    EXPECT_NE(o1, 127u);
    EXPECT_NE(o1, 0u);
    EXPECT_LT(o1, 224u);
  }
}

TEST(SubnetAllocator, RequiresAtLeastOneSubnet) {
  EXPECT_THROW(SubnetAllocator({}, util::Pcg32(1)), util::ConfigError);
}

}  // namespace
}  // namespace tradeplot::simnet
