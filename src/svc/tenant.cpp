#include "svc/tenant.h"

#include <cstdio>
#include <utility>

#include "detect/features.h"
#include "obs/metrics.h"
#include "shard/sharded_detector.h"
#include "util/error.h"
#include "util/interrupt.h"

namespace tradeplot::svc {

namespace {

obs::Counter* tenant_counter(const char* name, const char* help, const std::string& tenant) {
  if (!obs::enabled()) return nullptr;
  return &obs::Registry::global().counter(name, help, {{"tenant", tenant}});
}

/// Duck-typed adapter: both detectors expose the identical surface, so one
/// template covers both backends.
template <class Detector>
class BackendImpl final : public DetectorBackend {
 public:
  template <class Config>
  BackendImpl(Config cfg, std::function<void(const detect::WindowVerdict&)> sink)
      : detector_(std::move(cfg), std::move(sink)) {}

  void ingest(const netflow::FlowBatch& batch, std::size_t begin, std::size_t end) override {
    detector_.ingest(batch, begin, end);
  }
  void flush() override { detector_.flush(); }
  [[nodiscard]] std::uint64_t flows_ingested_total() const override {
    return detector_.flows_ingested_total();
  }
  void save_checkpoint_file(const std::string& path) const override {
    detector_.save_checkpoint_file(path);
  }
  void restore_checkpoint_file(const std::string& path) override {
    detector_.restore_checkpoint_file(path);
  }

 private:
  Detector detector_;
};

}  // namespace

std::unique_ptr<DetectorBackend> make_detector_backend(
    const TenantParams& params, std::function<void(const detect::WindowVerdict&)> sink) {
  if (params.shards <= 1) {
    detect::StreamingConfig cfg;
    cfg.window = params.window;
    cfg.is_internal = detect::default_internal_predicate;
    cfg.timing_budget = static_cast<std::size_t>(params.timing_budget);
    return std::make_unique<BackendImpl<detect::StreamingDetector>>(std::move(cfg),
                                                                    std::move(sink));
  }
  shard::ShardedConfig cfg;
  cfg.shards = static_cast<std::size_t>(params.shards);
  cfg.window = params.window;
  cfg.is_internal = detect::default_internal_predicate;
  cfg.timing_budget = static_cast<std::size_t>(params.timing_budget);
  return std::make_unique<BackendImpl<shard::ShardedDetector>>(std::move(cfg), std::move(sink));
}

Tenant::Tenant(TenantParams params, std::string state_dir, util::Clock& clock)
    : params_(std::move(params)), state_dir_(std::move(state_dir)), clock_(clock) {}

Tenant::~Tenant() {
  if (worker_.joinable()) stop();
}

std::string Tenant::checkpoint_path() const {
  return state_dir_ + "/" + params_.name + ".ckpt";
}

std::string Tenant::verdict_log_path() const {
  return state_dir_ + "/" + params_.name + ".verdicts.jsonl";
}

std::string format_verdict_line(const detect::WindowVerdict& v) {
  char head[256];
  std::snprintf(head, sizeof(head),
                "{\"window_index\":%zu,\"window_start\":%.17g,\"window_end\":%.17g,"
                "\"flows_seen\":%zu,\"hosts\":%zu,\"degraded\":%s,\"hosts_shed\":%zu,"
                "\"timing_samples_shed\":%zu,\"plotters\":[",
                v.window_index, v.window_start, v.window_end, v.flows_seen,
                v.features.size(), v.degraded ? "true" : "false", v.hosts_shed,
                v.timing_samples_shed);
  std::string line = head;
  for (std::size_t i = 0; i < v.result.plotters.size(); ++i) {
    if (i) line += ',';
    line += '"';
    line += v.result.plotters[i].to_string();
    line += '"';
  }
  line += "]}";
  return line;
}

void Tenant::write_verdict(const detect::WindowVerdict& v) {
  verdict_log_ << format_verdict_line(v) << '\n';
  verdict_log_.flush();
  verdicts_.fetch_add(1, std::memory_order_relaxed);
  if (auto* c = tenant_counter("tradeplot_svc_verdicts_total",
                               "Window verdicts emitted per tenant", params_.name))
    c->add();
}

void Tenant::restore_on_start() {
  const std::string path = checkpoint_path();
  std::ifstream probe(path, std::ios::binary);
  if (!probe) return;  // first start: no checkpoint yet
  probe.close();
  try {
    detector_->restore_checkpoint_file(path);
  } catch (const util::Error& e) {
    // A torn or mismatched checkpoint must not keep the tenant down: move
    // it aside for post-mortem, account the failure, start fresh.
    restore_failures_.fetch_add(1, std::memory_order_relaxed);
    const std::string quarantine = path + ".corrupt";
    std::rename(path.c_str(), quarantine.c_str());
    std::fprintf(stderr, "[svc] tenant %s: checkpoint restore failed (%s); starting fresh\n",
                 params_.name.c_str(), e.what());
  }
}

void Tenant::start() {
  detector_ = make_detector_backend(
      params_, [this](const detect::WindowVerdict& v) { write_verdict(v); });

  restore_on_start();
  const std::uint64_t resumed = detector_->flows_ingested_total();
  accepted_.store(resumed, std::memory_order_relaxed);
  ingested_.store(resumed, std::memory_order_relaxed);

  verdict_log_.open(verdict_log_path(), std::ios::app);
  if (!verdict_log_)
    throw util::IoError("tenant " + params_.name + ": cannot open verdict log in " +
                        state_dir_);

  next_interval_checkpoint_ =
      checkpoint_interval_ > 0.0 ? clock_.now() + checkpoint_interval_ : 0.0;
  stopping_ = false;
  {
    // The worker must not be picked for SIGINT/SIGTERM/SIGHUP delivery —
    // those signals drive the process's cooperative-shutdown EINTR wakeups
    // (util/interrupt.h). The spawn inherits the blocked mask.
    util::ScopedWorkerSignalMask mask;
    worker_ = std::thread([this] { worker_loop(); });
  }
  ready_.store(true, std::memory_order_relaxed);
  if (obs::enabled()) {
    obs::Registry::global()
        .gauge("tradeplot_svc_tenant_ready", "1 once the tenant universe is serving",
               {{"tenant", params_.name}})
        .set(1.0);
    obs::Registry::global()
        .gauge("tradeplot_svc_tenant_live", "1 while the tenant worker thread runs",
               {{"tenant", params_.name}})
        .set(1.0);
  }
}

void Tenant::stop() {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  cv_nonempty_.notify_all();
  cv_nonfull_.notify_all();
  if (worker_.joinable()) worker_.join();
  ready_.store(false, std::memory_order_relaxed);

  if (detector_) {
    // Final checkpoint BEFORE flush: the checkpoint must capture the still-
    // open window so a restarted daemon resumes it; flush then emits the
    // partial-window verdict this run can still report.
    save_checkpoint();
    try {
      detector_->flush();
    } catch (const std::exception& e) {
      std::fprintf(stderr, "[svc] tenant %s: flush failed: %s\n", params_.name.c_str(),
                   e.what());
    }
  }
  if (obs::enabled())
    obs::Registry::global()
        .gauge("tradeplot_svc_tenant_live", "1 while the tenant worker thread runs",
               {{"tenant", params_.name}})
        .set(0.0);
}

Tenant::Offer Tenant::offer(netflow::FlowBatch&& batch) {
  Offer result;
  const std::uint64_t rows = batch.size();
  if (rows == 0) return result;
  accepted_.fetch_add(rows, std::memory_order_relaxed);

  bool shed = false;
  {
    std::unique_lock<std::mutex> lock(mutex_);
    const auto fits = [&] {
      // An oversize batch (> whole capacity) is admitted once the queue is
      // empty: blocking policy must make progress, not deadlock.
      return queued_rows_locked_ + rows <= params_.queue_capacity ||
             (params_.overflow == Overflow::kBlock && queue_.empty());
    };
    if (!fits()) {
      if (params_.overflow == Overflow::kShed || stopping_) {
        shed = true;
      } else {
        cv_nonfull_.wait(lock, [&] { return fits() || stopping_; });
        if (stopping_ && !fits()) shed = true;
      }
    }
    if (!shed) {
      queued_rows_locked_ += rows;
      queue_.push_back(std::move(batch));
      if (obs::enabled())
        obs::Registry::global()
            .histogram("tradeplot_svc_queue_depth_rows",
                       "Ingest queue depth (rows) observed at each offer",
                       obs::count_buckets(), {{"tenant", params_.name}})
            .observe(static_cast<double>(queued_rows_locked_));
    }
  }
  if (shed) {
    shed_.fetch_add(rows, std::memory_order_relaxed);
    result.shed = rows;
    if (auto* c = tenant_counter("tradeplot_svc_rows_shed_total",
                                 "Rows dropped by queue overflow policy", params_.name))
      c->add(rows);
  } else {
    result.enqueued = rows;
    cv_nonempty_.notify_one();
    if (auto* c = tenant_counter("tradeplot_svc_rows_enqueued_total",
                                 "Rows admitted to the ingest queue", params_.name))
      c->add(rows);
  }
  return result;
}

void Tenant::add_quarantined(std::uint64_t n) {
  if (n == 0) return;
  accepted_.fetch_add(n, std::memory_order_relaxed);
  quarantined_.fetch_add(n, std::memory_order_relaxed);
  if (auto* c = tenant_counter("tradeplot_svc_rows_quarantined_total",
                               "Malformed rows quarantined by the payload parser",
                               params_.name))
    c->add(n);
}

Tenant::Stats Tenant::flush_barrier() {
  std::unique_lock<std::mutex> lock(mutex_);
  cv_drained_.wait(lock, [&] { return queue_.empty() && !worker_busy_; });
  return stats();
}

Tenant::Stats Tenant::stats() const {
  Stats s;
  s.accepted = accepted_.load(std::memory_order_relaxed);
  s.ingested = ingested_.load(std::memory_order_relaxed);
  s.shed = shed_.load(std::memory_order_relaxed);
  s.quarantined = quarantined_.load(std::memory_order_relaxed);
  s.verdicts = verdicts_.load(std::memory_order_relaxed);
  s.checkpoints = checkpoints_.load(std::memory_order_relaxed);
  s.checkpoint_failures = checkpoint_failures_.load(std::memory_order_relaxed);
  s.restore_failures = restore_failures_.load(std::memory_order_relaxed);
  return s;
}

std::uint64_t Tenant::queued_rows() const {
  std::unique_lock<std::mutex> lock(mutex_);
  return queued_rows_locked_;
}

bool Tenant::update(const TenantParams& fresh) {
  // shards shapes the live detector and its checkpoint family (TPCK vs
  // TPSH), so like window/timing_budget it is fixed per process lifetime.
  const bool compatible = fresh.window == params_.window &&
                          fresh.timing_budget == params_.timing_budget &&
                          fresh.shards == params_.shards;
  std::unique_lock<std::mutex> lock(mutex_);
  params_.queue_capacity = fresh.queue_capacity;
  params_.overflow = fresh.overflow;
  params_.checkpoint_every = fresh.checkpoint_every;
  params_.policy = fresh.policy;
  lock.unlock();
  cv_nonfull_.notify_all();  // a raised capacity may unblock waiting offers
  return compatible;
}

void Tenant::save_checkpoint() {
  const std::string path = checkpoint_path();
  const std::string tmp = path + ".tmp";
  try {
    detector_->save_checkpoint_file(tmp);
    if (std::rename(tmp.c_str(), path.c_str()) != 0)
      throw util::IoError("rename " + tmp + " -> " + path);
    checkpoints_.fetch_add(1, std::memory_order_relaxed);
    if (auto* c = tenant_counter("tradeplot_svc_checkpoints_total",
                                 "Checkpoints written per tenant", params_.name))
      c->add();
  } catch (const std::exception& e) {
    // A failed checkpoint narrows the durability window but must not stop
    // ingestion; the failure is visible in stats and metrics.
    checkpoint_failures_.fetch_add(1, std::memory_order_relaxed);
    std::remove(tmp.c_str());
    std::fprintf(stderr, "[svc] tenant %s: checkpoint failed: %s\n", params_.name.c_str(),
                 e.what());
  }
}

void Tenant::ingest_batch(const netflow::FlowBatch& batch) {
  // Split the batch at checkpoint boundaries so a checkpoint lands after
  // exactly every checkpoint_every-th flow, record-granular — the same
  // discipline as campus_monitor --checkpoint, and the reason a resumed
  // daemon fast-forwards to an identical position.
  const std::uint64_t every = params_.checkpoint_every;
  const std::size_t n = batch.size();
  std::size_t begin = 0;
  while (begin < n) {
    std::size_t take = n - begin;
    if (every > 0) {
      const std::uint64_t until = every - detector_->flows_ingested_total() % every;
      if (static_cast<std::uint64_t>(take) > until) take = static_cast<std::size_t>(until);
    }
    detector_->ingest(batch, begin, begin + take);
    begin += take;
    ingested_.fetch_add(take, std::memory_order_relaxed);
    if (every > 0 && detector_->flows_ingested_total() % every == 0) save_checkpoint();
  }
  if (auto* c = tenant_counter("tradeplot_svc_rows_ingested_total",
                               "Rows the detector consumed per tenant", params_.name))
    c->add(n);
  if (checkpoint_interval_ > 0.0 && clock_.now() >= next_interval_checkpoint_) {
    save_checkpoint();
    next_interval_checkpoint_ = clock_.now() + checkpoint_interval_;
  }
}

void Tenant::worker_loop() {
  for (;;) {
    netflow::FlowBatch batch;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_nonempty_.wait(lock, [&] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) break;  // stopping_ with a drained queue
      batch = std::move(queue_.front());
      queue_.pop_front();
      queued_rows_locked_ -= batch.size();
      worker_busy_ = true;
    }
    cv_nonfull_.notify_all();
    ingest_batch(batch);
    {
      std::unique_lock<std::mutex> lock(mutex_);
      worker_busy_ = false;
    }
    cv_drained_.notify_all();
  }
  // Drained and stopping: wake any barrier waiting on the final batch.
  cv_drained_.notify_all();
}

}  // namespace tradeplot::svc
