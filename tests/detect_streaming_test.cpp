#include "detect/streaming.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>

#include "botnet/honeynet.h"
#include "netflow/io.h"
#include "netflow/trace_reader.h"
#include "eval/day.h"
#include "util/error.h"
#include "util/rng.h"

namespace tradeplot::detect {
namespace {

bool is_internal(simnet::Ipv4 ip) { return default_internal_predicate(ip); }

netflow::FlowRecord flow(simnet::Ipv4 src, simnet::Ipv4 dst, double start,
                         std::uint64_t bytes = 100) {
  netflow::FlowRecord r;
  r.src = src;
  r.dst = dst;
  r.start_time = start;
  r.end_time = start + 1;
  r.bytes_src = bytes;
  r.pkts_src = 1;
  r.pkts_dst = 1;
  return r;
}

StreamingConfig config(double window = 100.0) {
  StreamingConfig c;
  c.window = window;
  c.is_internal = is_internal;
  return c;
}

TEST(StreamingDetector, ValidatesConfig) {
  const auto sink = [](const WindowVerdict&) {};
  EXPECT_THROW(StreamingDetector(StreamingConfig{}, sink), util::ConfigError);
  StreamingConfig bad = config();
  bad.window = 0;
  EXPECT_THROW(StreamingDetector(bad, sink), util::ConfigError);
  EXPECT_THROW(StreamingDetector(config(), nullptr), util::ConfigError);
}

TEST(StreamingDetector, EmitsOneVerdictPerWindow) {
  std::vector<WindowVerdict> verdicts;
  StreamingDetector detector(config(100.0),
                             [&](const WindowVerdict& v) { verdicts.push_back(v); });
  const simnet::Ipv4 host(128, 2, 0, 1);
  detector.ingest(flow(host, simnet::Ipv4(1, 1, 1, 1), 10));
  detector.ingest(flow(host, simnet::Ipv4(1, 1, 1, 2), 50));
  detector.ingest(flow(host, simnet::Ipv4(1, 1, 1, 3), 150));  // rolls window 0
  detector.ingest(flow(host, simnet::Ipv4(1, 1, 1, 4), 260));  // rolls window 1
  detector.flush();                                            // emits window 2
  ASSERT_EQ(verdicts.size(), 3u);
  EXPECT_EQ(verdicts[0].flows_seen, 2u);
  EXPECT_DOUBLE_EQ(verdicts[0].window_start, 0.0);
  EXPECT_DOUBLE_EQ(verdicts[0].window_end, 100.0);
  EXPECT_EQ(verdicts[1].flows_seen, 1u);
  EXPECT_EQ(verdicts[2].flows_seen, 1u);
  EXPECT_EQ(verdicts[2].window_index, 2u);
}

TEST(StreamingDetector, LongGapsEmitEmptyWindows) {
  std::vector<WindowVerdict> verdicts;
  StreamingDetector detector(config(100.0),
                             [&](const WindowVerdict& v) { verdicts.push_back(v); });
  const simnet::Ipv4 host(128, 2, 0, 1);
  detector.ingest(flow(host, simnet::Ipv4(1, 1, 1, 1), 10));
  detector.ingest(flow(host, simnet::Ipv4(1, 1, 1, 2), 350));
  detector.flush();
  ASSERT_EQ(verdicts.size(), 4u);  // windows [0,100), [100,200), [200,300), [300,400)
  EXPECT_EQ(verdicts[1].flows_seen, 0u);
  EXPECT_EQ(verdicts[2].flows_seen, 0u);
}

TEST(StreamingDetector, FirstWindowAlignsToMultipleOfD) {
  std::vector<WindowVerdict> verdicts;
  StreamingDetector detector(config(100.0),
                             [&](const WindowVerdict& v) { verdicts.push_back(v); });
  detector.ingest(flow(simnet::Ipv4(128, 2, 0, 1), simnet::Ipv4(1, 1, 1, 1), 567.0));
  detector.flush();
  ASSERT_EQ(verdicts.size(), 1u);
  EXPECT_DOUBLE_EQ(verdicts[0].window_start, 500.0);
}

TEST(StreamingDetector, MatchesBatchExtractorOnOrderedTrace) {
  // A streaming pass over one window must produce the same features as the
  // batch extractor for in-order flows.
  const auto storm_cfg = [] {
    botnet::HoneynetConfig h;
    h.seed = 3;
    h.duration = 1800.0;
    h.nugache_bots = 0;
    return h;
  }();
  const netflow::TraceSet trace = botnet::generate_storm_trace(storm_cfg);

  FeatureMap streamed;
  StreamingConfig cfg = config(3600.0);
  StreamingDetector detector(cfg, [&](const WindowVerdict&) {});
  // Capture features via a custom sink is not possible (result only), so
  // compare through the pipeline result instead: run both paths.
  std::vector<FindPlottersResult> results;
  StreamingDetector detector2(cfg, [&](const WindowVerdict& v) { results.push_back(v.result); });
  for (const auto& rec : trace.flows()) detector2.ingest(rec);
  detector2.flush();

  FeatureExtractorConfig fx;
  fx.is_internal = is_internal;
  const FeatureMap batch = extract_features(trace, fx);
  const FindPlottersResult batch_result = find_plotters(batch);

  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0].input, batch_result.input);
  EXPECT_EQ(results[0].reduced, batch_result.reduced);
  EXPECT_EQ(results[0].s_vol, batch_result.s_vol);
  EXPECT_EQ(results[0].s_churn, batch_result.s_churn);
  EXPECT_EQ(results[0].plotters, batch_result.plotters);
}

TEST(StreamingDetector, OutOfOrderFlowsMatchBatchInterstitials) {
  // Regression: the streaming extractor used to record a late arrival as
  // |t - last_contact| without updating last_contact, so times 0, 10, 5
  // yielded interstitials {10, 5} where the batch extractor (which sorts
  // per-destination times) yields {5, 5}.
  const simnet::Ipv4 src(128, 2, 0, 1);
  const simnet::Ipv4 dst(1, 1, 1, 1);
  std::vector<WindowVerdict> verdicts;
  StreamingDetector detector(config(100.0),
                             [&](const WindowVerdict& v) { verdicts.push_back(v); });
  detector.ingest(flow(src, dst, 0.0));
  detector.ingest(flow(src, dst, 10.0));
  detector.ingest(flow(src, dst, 5.0));  // late arrival
  detector.flush();
  ASSERT_EQ(verdicts.size(), 1u);
  std::vector<double> gaps = verdicts[0].features.at(src).interstitials;
  std::sort(gaps.begin(), gaps.end());
  EXPECT_EQ(gaps, (std::vector<double>{5.0, 5.0}));
}

TEST(StreamingDetector, ShuffledTraceMatchesBatchFeatures) {
  // Feed the same trace to the batch extractor (in order) and the streaming
  // detector (shuffled within the window): every per-host feature,
  // including the interstitial multiset, must agree exactly.
  botnet::HoneynetConfig honeynet;
  honeynet.seed = 7;
  honeynet.duration = 1800.0;
  honeynet.nugache_bots = 0;
  const netflow::TraceSet trace = botnet::generate_storm_trace(honeynet);

  FeatureExtractorConfig fx;
  fx.is_internal = is_internal;
  const FeatureMap batch = extract_features(trace, fx);

  std::vector<netflow::FlowRecord> shuffled(trace.flows().begin(), trace.flows().end());
  util::Pcg32 rng(99);
  for (std::size_t i = shuffled.size(); i > 1; --i) {
    const auto j = static_cast<std::size_t>(rng.uniform_int(0, static_cast<int>(i) - 1));
    std::swap(shuffled[i - 1], shuffled[j]);
  }

  std::vector<WindowVerdict> verdicts;
  StreamingConfig cfg = config(3600.0);
  StreamingDetector detector(cfg, [&](const WindowVerdict& v) { verdicts.push_back(v); });
  // Anchor the window so every shuffled flow lands in window [0, 3600).
  detector.ingest(flow(simnet::Ipv4(128, 2, 0, 200), simnet::Ipv4(9, 9, 9, 9), 0.0));
  for (const auto& rec : shuffled) detector.ingest(rec);
  detector.flush();

  ASSERT_EQ(verdicts.size(), 1u);
  const FeatureMap& streamed = verdicts[0].features;
  for (const auto& [host, bf] : batch) {
    ASSERT_TRUE(streamed.contains(host)) << host.to_string();
    const HostFeatures& sf = streamed.at(host);
    EXPECT_EQ(sf.flows_initiated, bf.flows_initiated);
    EXPECT_EQ(sf.flows_failed, bf.flows_failed);
    EXPECT_EQ(sf.distinct_dsts, bf.distinct_dsts);
    EXPECT_EQ(sf.dsts_after_first_hour, bf.dsts_after_first_hour);
    EXPECT_DOUBLE_EQ(sf.first_activity, bf.first_activity);
    std::vector<double> sg = sf.interstitials, bg = bf.interstitials;
    std::sort(sg.begin(), sg.end());
    std::sort(bg.begin(), bg.end());
    EXPECT_EQ(sg, bg) << "interstitials diverge for " << host.to_string();
  }
}

TEST(StreamingDetector, ParityWithBatchOnOverlaidDay) {
  // The streaming path must reach the same verdict as the batch pipeline
  // on a full overlaid day whose flows arrive in time order.
  botnet::HoneynetConfig honeynet;
  honeynet.seed = 11;
  honeynet.duration = 2 * 3600.0;
  const netflow::TraceSet storm = botnet::generate_storm_trace(honeynet);
  const netflow::TraceSet empty;
  trace::CampusConfig campus;
  campus.seed = 11;
  campus.window = 2 * 3600.0;
  campus.web_clients = 150;
  campus.idle_hosts = 50;
  campus.gnutella_hosts = 5;
  campus.emule_hosts = 5;
  campus.bittorrent_hosts = 8;
  const eval::DayData day = eval::make_day(campus, storm, empty, 0);
  const FindPlottersResult batch = find_plotters(day.features);

  StreamingConfig cfg = config(2 * 3600.0);
  std::vector<WindowVerdict> verdicts;
  StreamingDetector detector(cfg, [&](const WindowVerdict& v) { verdicts.push_back(v); });
  for (const auto& rec : day.combined.flows()) detector.ingest(rec);
  detector.flush();

  ASSERT_EQ(verdicts.size(), 1u);
  EXPECT_EQ(verdicts[0].flows_seen, day.combined.flows().size());
  EXPECT_EQ(verdicts[0].result.input, batch.input);
  EXPECT_EQ(verdicts[0].result.reduced, batch.reduced);
  EXPECT_EQ(verdicts[0].result.vol_or_churn, batch.vol_or_churn);
  EXPECT_EQ(verdicts[0].result.plotters, batch.plotters);
}

TEST(Feed, TraceReaderFeedMatchesDirectIngestion) {
  // The production ingestion path (trace file -> TraceReader -> feed) must
  // reach verdicts identical to the batch pipeline over the same flows.
  botnet::HoneynetConfig honeynet;
  honeynet.seed = 21;
  honeynet.duration = 2 * 3600.0;
  honeynet.nugache_bots = 0;
  const netflow::TraceSet trace = botnet::generate_storm_trace(honeynet);

  const FindPlottersResult batch = [&] {
    FeatureExtractorConfig fx;
    fx.is_internal = is_internal;
    return find_plotters(extract_features(trace, fx));
  }();

  for (const bool binary : {false, true}) {
    SCOPED_TRACE(binary ? "binary" : "csv");
    std::stringstream bytes;
    if (binary) netflow::write_binary(bytes, trace);
    else netflow::write_csv(bytes, trace);
    netflow::TraceReader reader(bytes);

    std::vector<WindowVerdict> verdicts;
    StreamingDetector detector(config(2 * 3600.0),
                               [&](const WindowVerdict& v) { verdicts.push_back(v); });
    const std::size_t fed = feed(reader, detector);

    EXPECT_EQ(fed, trace.flows().size());
    EXPECT_EQ(reader.flows_read(), trace.flows().size());
    ASSERT_GE(verdicts.size(), 1u);
    EXPECT_EQ(verdicts[0].flows_seen, trace.flows().size());
    EXPECT_EQ(verdicts[0].result.input, batch.input);
    EXPECT_EQ(verdicts[0].result.reduced, batch.reduced);
    EXPECT_EQ(verdicts[0].result.s_vol, batch.s_vol);
    EXPECT_EQ(verdicts[0].result.s_churn, batch.s_churn);
    EXPECT_EQ(verdicts[0].result.plotters, batch.plotters);
  }
}

TEST(StreamingDetector, FlushOnNeverOpenedWindowEmitsNothing) {
  std::vector<WindowVerdict> verdicts;
  StreamingDetector detector(config(), [&](const WindowVerdict& v) { verdicts.push_back(v); });
  detector.flush();
  detector.flush();
  EXPECT_TRUE(verdicts.empty());
  EXPECT_EQ(detector.windows_emitted(), 0u);
}

TEST(StreamingDetector, DoubleFlushIsIdempotent) {
  std::vector<WindowVerdict> verdicts;
  StreamingDetector detector(config(), [&](const WindowVerdict& v) { verdicts.push_back(v); });
  detector.ingest(flow(simnet::Ipv4(128, 2, 0, 1), simnet::Ipv4(5, 5, 5, 5), 10.0));
  detector.flush();
  ASSERT_EQ(verdicts.size(), 1u);
  // A second flush with nothing new must not emit a spurious empty verdict.
  detector.flush();
  EXPECT_EQ(verdicts.size(), 1u);
  EXPECT_EQ(detector.windows_emitted(), 1u);
  // The detector stays usable: a later flow opens a fresh window.
  detector.ingest(flow(simnet::Ipv4(128, 2, 0, 1), simnet::Ipv4(5, 5, 5, 6), 250.0));
  detector.flush();
  ASSERT_EQ(verdicts.size(), 2u);
  EXPECT_EQ(verdicts[1].flows_seen, 1u);
  detector.flush();
  EXPECT_EQ(verdicts.size(), 2u);
}

TEST(StreamingDetector, BatchIngestMatchesRecordIngestBitExactly) {
  // Column-scan ingestion (FlowBatch overloads) must reach verdicts
  // bit-identical to record-at-a-time ingestion — including windows that
  // roll mid-batch, degraded (timing-budget-shed) windows, and cache-warm
  // later windows.
  botnet::HoneynetConfig honeynet;
  honeynet.seed = 31;
  honeynet.duration = 3 * 3600.0;
  honeynet.nugache_bots = 0;
  const netflow::TraceSet trace = botnet::generate_storm_trace(honeynet);

  for (const std::size_t budget : {std::size_t{0}, std::size_t{200}}) {
    SCOPED_TRACE("timing budget " + std::to_string(budget));
    StreamingConfig cfg = config(3600.0);  // several windows per run
    cfg.timing_budget = budget;

    const auto run = [&](auto&& ingest_all) {
      std::vector<WindowVerdict> verdicts;
      StreamingDetector detector(cfg, [&](const WindowVerdict& v) { verdicts.push_back(v); });
      ingest_all(detector);
      detector.flush();
      return verdicts;
    };

    const auto by_record = run([&](StreamingDetector& d) {
      for (const auto& rec : trace.flows()) d.ingest(rec);
    });

    // Whole batches of an odd size, so window boundaries land mid-batch.
    const auto by_batch = run([&](StreamingDetector& d) {
      netflow::FlowBatch batch(37);
      for (const auto& rec : trace.flows()) {
        batch.push_back(rec);
        if (batch.full()) {
          d.ingest(batch);
          batch.clear();
        }
      }
      if (!batch.empty()) d.ingest(batch);
    });

    // Ragged range splits (including empty ranges) over one big batch.
    const auto by_ranges = run([&](StreamingDetector& d) {
      netflow::FlowBatch batch(trace.flows().size());
      for (const auto& rec : trace.flows()) batch.push_back(rec);
      std::size_t begin = 0;
      std::size_t step = 1;
      while (begin < batch.size()) {
        const std::size_t end = std::min(batch.size(), begin + step);
        d.ingest(batch, begin, end);
        d.ingest(batch, end, end);  // empty range is a no-op
        begin = end;
        step = step * 2 + 1;
      }
    });

    ASSERT_EQ(by_batch.size(), by_record.size());
    ASSERT_EQ(by_ranges.size(), by_record.size());
    for (std::size_t i = 0; i < by_record.size(); ++i) {
      SCOPED_TRACE("window " + std::to_string(i));
      for (const auto* got : {&by_batch[i], &by_ranges[i]}) {
        EXPECT_EQ(got->flows_seen, by_record[i].flows_seen);
        EXPECT_EQ(got->degraded, by_record[i].degraded);
        EXPECT_EQ(got->hosts_shed, by_record[i].hosts_shed);
        EXPECT_EQ(got->timing_samples_shed, by_record[i].timing_samples_shed);
        EXPECT_EQ(got->result.input, by_record[i].result.input);
        EXPECT_EQ(got->result.reduced, by_record[i].result.reduced);
        EXPECT_EQ(got->result.s_vol, by_record[i].result.s_vol);
        EXPECT_EQ(got->result.s_churn, by_record[i].result.s_churn);
        EXPECT_EQ(got->result.plotters, by_record[i].result.plotters);
      }
    }
  }
}

TEST(Feed, ColumnarV3TraceFeedsIdenticalVerdicts) {
  // feed() drains next_batch; a columnar (v3) trace must produce the same
  // verdict as the v1 binary and CSV encodings of the same flows.
  botnet::HoneynetConfig honeynet;
  honeynet.seed = 21;
  honeynet.duration = 2 * 3600.0;
  honeynet.nugache_bots = 0;
  const netflow::TraceSet trace = botnet::generate_storm_trace(honeynet);

  const FindPlottersResult batch = [&] {
    FeatureExtractorConfig fx;
    fx.is_internal = is_internal;
    return find_plotters(extract_features(trace, fx));
  }();

  std::stringstream bytes;
  netflow::write_binary_columnar(bytes, trace);
  netflow::TraceReader reader(bytes);
  std::vector<WindowVerdict> verdicts;
  StreamingDetector detector(config(2 * 3600.0),
                             [&](const WindowVerdict& v) { verdicts.push_back(v); });
  const std::size_t fed = feed(reader, detector);
  EXPECT_EQ(fed, trace.flows().size());
  ASSERT_GE(verdicts.size(), 1u);
  EXPECT_EQ(verdicts[0].flows_seen, trace.flows().size());
  EXPECT_EQ(verdicts[0].result.input, batch.input);
  EXPECT_EQ(verdicts[0].result.reduced, batch.reduced);
  EXPECT_EQ(verdicts[0].result.plotters, batch.plotters);
}

TEST(Feed, EmptyTraceFeedsZeroFlows) {
  netflow::TraceSet empty(0.0, 100.0);
  std::stringstream bytes;
  netflow::write_csv(bytes, empty);
  netflow::TraceReader reader(bytes);
  StreamingDetector detector(config(), [](const WindowVerdict&) { FAIL(); });
  EXPECT_EQ(feed(reader, detector), 0u);
}

}  // namespace
}  // namespace tradeplot::detect
