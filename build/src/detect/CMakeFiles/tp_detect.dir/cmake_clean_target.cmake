file(REMOVE_RECURSE
  "libtp_detect.a"
)
