// Flow-record serialization.
//
// Two formats:
//   * CSV  — human-inspectable, one flow per line, header row; payload is
//            hex-encoded. Ground truth is carried in a separate "#truth"
//            comment section so a TraceSet round-trips through one file.
//   * BIN  — compact little-endian binary with a magic/version header, for
//            large traces.
//
// The readers here are batch conveniences: they drain a streaming
// netflow::TraceReader (see trace_reader.h) into a TraceSet. Callers that
// ingest large traces should prefer TraceReader directly — it yields one
// FlowRecord at a time in bounded memory.
#pragma once

#include <iosfwd>
#include <string>

#include "netflow/trace_set.h"

namespace tradeplot::netflow {

/// Writes `trace` as CSV. Throws util::IoError on stream failure.
void write_csv(std::ostream& out, const TraceSet& trace);
void write_csv_file(const std::string& path, const TraceSet& trace);

/// Reads a TraceSet written by write_csv. Throws util::ParseError /
/// util::IoError on malformed input.
[[nodiscard]] TraceSet read_csv(std::istream& in);
[[nodiscard]] TraceSet read_csv_file(const std::string& path);

/// Binary round-trip (same error contract). write_binary emits the v1
/// record-oriented format; write_binary_columnar emits v3 column blocks
/// (same preamble, then fixed-stride per-column arrays — the layout
/// TraceReader::next_batch decodes with a handful of bulk reads, and that a
/// future mmap reader can map in place). Both read back through the same
/// entry points: TraceReader dispatches on the version tag.
void write_binary(std::ostream& out, const TraceSet& trace);
void write_binary_file(const std::string& path, const TraceSet& trace);
void write_binary_columnar(std::ostream& out, const TraceSet& trace);
void write_binary_columnar_file(const std::string& path, const TraceSet& trace);
[[nodiscard]] TraceSet read_binary(std::istream& in);
[[nodiscard]] TraceSet read_binary_file(const std::string& path);

/// Span-based cores of the binary writers: serialize `n` flows with an
/// explicit window and optional ground truth (nullptr = none). The TraceSet
/// overloads above are thin wrappers; the service layer's FrameSender uses
/// these directly to frame slices of a flow stream as self-contained binary
/// mini-traces without materializing a TraceSet per frame.
void write_binary(std::ostream& out, const FlowRecord* flows, std::size_t n,
                  double window_start, double window_end,
                  const std::unordered_map<simnet::Ipv4, HostKind>* truth = nullptr);
void write_binary_columnar(std::ostream& out, const FlowRecord* flows, std::size_t n,
                           double window_start, double window_end,
                           const std::unordered_map<simnet::Ipv4, HostKind>* truth = nullptr);

}  // namespace tradeplot::netflow
