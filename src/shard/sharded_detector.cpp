#include "shard/sharded_detector.h"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <istream>
#include <ostream>
#include <string>
#include <utility>

#include "detect/payload_codec.h"
#include "obs/metrics.h"
#include "obs/profiler.h"
#include "util/checksum.h"
#include "util/error.h"
#include "util/parallel.h"

namespace tradeplot::shard {

namespace {

obs::Counter& shard_windows_counter() {
  return obs::Registry::global().counter("tradeplot_shard_windows_total",
                                         "Detection windows closed by the sharded detector");
}

constexpr std::uint32_t kShardCkptMagic = 0x48535054;  // "TPSH" on the wire
constexpr std::uint32_t kShardCkptVersion = 1;
constexpr std::uint64_t kShardCkptMaxPayload = 1ull << 30;

}  // namespace

ShardedDetector::ShardedDetector(ShardedConfig config, VerdictSink sink)
    : config_(std::move(config)),
      sink_(std::move(sink)),
      ring_(config_.shards, config_.vnodes) {
  if (!config_.is_internal)
    throw util::ConfigError("ShardedDetector: is_internal required");
  if (config_.window <= 0.0)
    throw util::ConfigError("ShardedDetector: window must be > 0");
  if (!sink_) throw util::ConfigError("ShardedDetector: verdict sink required");
  accumulators_.resize(config_.shards);
  caches_.resize(config_.shards);
  ops_.resize(config_.shards);
  shard_budget_ = config_.shards == 1 ? config_.timing_budget
                                      : config_.timing_budget / config_.shards;
}

std::size_t ShardedDetector::shard_host_count(std::size_t s) const {
  return accumulators_.at(s).host_count();
}

void ShardedDetector::route_row(const netflow::FlowBatch& batch, std::size_t i) {
  const simnet::Ipv4 src = batch.src()[i];
  const simnet::Ipv4 dst = batch.dst()[i];
  const bool failed = batch.state()[i] != netflow::FlowState::kEstablished;
  if (config_.is_internal(src))
    ops_[ring_.shard_of(src)].push_back(static_cast<std::uint32_t>(i));
  if (config_.is_internal(dst) && !failed)
    ops_[ring_.shard_of(dst)].push_back(static_cast<std::uint32_t>(i) | kResponderBit);
  ops_pending_ += 1;
  ++flows_in_window_;
  ++flows_ingested_total_;
}

void ShardedDetector::apply_pending(const netflow::FlowBatch& batch) {
  if (ops_pending_ == 0) return;
  const simnet::Ipv4* src = batch.src();
  const simnet::Ipv4* dst = batch.dst();
  const double* start = batch.start_time();
  const std::uint64_t* bytes_src = batch.bytes_src();
  const std::uint64_t* bytes_dst = batch.bytes_dst();
  const netflow::FlowState* state = batch.state();
  // One task per shard; each touches only its own accumulator, so every
  // thread count (including 1) produces identical per-shard state.
  util::parallel_for(0, config_.shards, 1, config_.threads, [&](std::size_t s) {
    detect::WindowAccumulator& acc = accumulators_[s];
    for (const std::uint32_t op : ops_[s]) {
      const std::size_t i = op & ~kResponderBit;
      if ((op & kResponderBit) != 0) {
        acc.apply_responder(dst[i], start[i], bytes_dst[i]);
      } else {
        acc.apply_initiator(src[i], dst[i], start[i], bytes_src[i],
                            state[i] != netflow::FlowState::kEstablished, shard_budget_);
      }
    }
  });
  for (std::vector<std::uint32_t>& shard_ops : ops_) shard_ops.clear();
  ops_pending_ = 0;
}

void ShardedDetector::ingest(const netflow::FlowBatch& batch) {
  ingest(batch, 0, batch.size());
}

void ShardedDetector::ingest(const netflow::FlowBatch& batch, std::size_t begin,
                             std::size_t end) {
  const double* start = batch.start_time();
  for (std::size_t i = begin; i < end; ++i) {
    const double t = start[i];
    if (!window_open_) {
      window_start_ = std::floor(t / config_.window) * config_.window;
      window_open_ = true;
    }
    if (t >= window_start_ + config_.window) {
      // Window boundary inside the batch: drain the routed segment into the
      // shards, close the window(s), then keep routing — verdicts land
      // exactly where record-at-a-time ingestion would put them.
      apply_pending(batch);
      roll_to(t);
    }
    route_row(batch, i);
  }
  apply_pending(batch);
}

void ShardedDetector::ingest(const netflow::FlowRecord& flow) {
  if (!window_open_) {
    window_start_ = std::floor(flow.start_time / config_.window) * config_.window;
    window_open_ = true;
  }
  roll_to(flow.start_time);
  if (config_.is_internal(flow.src)) {
    accumulators_[ring_.shard_of(flow.src)].apply_initiator(
        flow.src, flow.dst, flow.start_time, flow.bytes_src, flow.failed(), shard_budget_);
  }
  if (config_.is_internal(flow.dst) && !flow.failed()) {
    accumulators_[ring_.shard_of(flow.dst)].apply_responder(flow.dst, flow.start_time,
                                                            flow.bytes_dst);
  }
  ++flows_in_window_;
  ++flows_ingested_total_;
}

void ShardedDetector::roll_to(double time) {
  while (window_open_ && time >= window_start_ + config_.window) {
    emit();
    window_start_ += config_.window;
  }
}

void ShardedDetector::emit() {
  const obs::StageTimer close_timer(obs::Stage::kWindowClose);
  const std::size_t shards = config_.shards;

  // Finalize every shard's features in parallel (each writes its own slot).
  std::vector<detect::FeatureMap> shard_features(shards);
  util::parallel_for(0, shards, 1, config_.threads, [&](std::size_t s) {
    shard_features[s] = accumulators_[s].finalize(config_.new_ip_grace);
  });

  std::size_t hosts_shed = 0, samples_shed = 0;
  for (const detect::WindowAccumulator& acc : accumulators_) {
    hosts_shed += acc.hosts_shed();
    samples_shed += acc.timing_samples_shed();
  }

  detect::WindowVerdict verdict;
  verdict.window_index = windows_emitted_;
  verdict.window_start = window_start_;
  verdict.window_end = window_start_ + config_.window;
  verdict.flows_seen = flows_in_window_;
  verdict.degraded = hosts_shed > 0;
  verdict.hosts_shed = hosts_shed;
  verdict.timing_samples_shed = samples_shed;

  if (shards == 1) {
    // Single shard: the exact StreamingDetector code path, bit for bit.
    if (!shard_features[0].empty()) {
      verdict.result = detect::find_plotters(shard_features[0], config_.pipeline,
                                             config_.signature_cache ? &caches_[0] : nullptr);
    }
    verdict.features = std::move(shard_features[0]);
    last_report_ = MergedPipelineReport{};
    last_report_.shard_count = 1;
  } else {
    std::size_t total_hosts = 0;
    for (const detect::FeatureMap& m : shard_features) total_hosts += m.size();
    if (total_hosts > 0) {
      std::vector<detect::HmCache*> caches;
      if (config_.signature_cache) {
        caches.reserve(shards);
        for (detect::HmCache& c : caches_) caches.push_back(&c);
      }
      MergedResult m = merged_find_plotters(shard_features, config_.pipeline, caches,
                                            config_.sketch_k);
      verdict.result = std::move(m.result);
      last_report_ = m.report;
    } else {
      last_report_ = MergedPipelineReport{};
      last_report_.shard_count = shards;
    }
    verdict.features.reserve(total_hosts);
    for (detect::FeatureMap& m : shard_features) {
      for (auto& [host, f] : m) verdict.features.emplace(host, std::move(f));
    }
  }
  sink_(verdict);

  if (obs::enabled()) {
    shard_windows_counter().add();
    // One gauge per shard (label keyed by index): how even the ring spread
    // this window's hosts — the balance number the scaling story rests on.
    for (std::size_t s = 0; s < shards; ++s) {
      obs::Registry::global()
          .gauge("tradeplot_shard_window_hosts",
                 "Hosts a shard tracked in the last closed window",
                 {{"shard", std::to_string(s)}})
          .set(static_cast<double>(accumulators_[s].host_count()));
    }
  }

  for (detect::WindowAccumulator& acc : accumulators_) acc.reset();
  flows_in_window_ = 0;
  ++windows_emitted_;
}

void ShardedDetector::flush() {
  if (!window_open_) return;
  emit();
  window_open_ = false;
}

// ---------------------------------------------------------------------------
// Checkpoint: the same framing discipline as the TPCK image (magic, version,
// payload size, CRC-32) under its own magic, with one state section per
// shard. The routing geometry (shard count, vnodes) is part of the payload:
// restoring into a different geometry would silently send future flows of a
// host to a shard that does not hold its accumulated state.

void ShardedDetector::save_checkpoint(std::ostream& out) const {
  const obs::StageTimer save_timer(obs::Stage::kCheckpointSave);
  detect::PayloadWriter w;
  w.put(config_.window);
  w.put(config_.new_ip_grace);
  w.put(static_cast<std::uint64_t>(config_.shards));
  w.put(static_cast<std::uint64_t>(config_.vnodes));
  w.put(static_cast<std::uint8_t>(window_open_));
  w.put(window_start_);
  w.put(static_cast<std::uint64_t>(flows_in_window_));
  w.put(static_cast<std::uint64_t>(windows_emitted_));
  w.put(flows_ingested_total_);
  for (std::size_t s = 0; s < config_.shards; ++s) {
    accumulators_[s].encode(w);
    caches_[s].encode(w);
  }

  const std::string& payload = w.bytes();
  const std::uint32_t crc = util::crc32(payload.data(), payload.size());
  const auto put_raw = [&](const void* p, std::size_t n) {
    out.write(static_cast<const char*>(p), static_cast<std::streamsize>(n));
  };
  put_raw(&kShardCkptMagic, sizeof(kShardCkptMagic));
  put_raw(&kShardCkptVersion, sizeof(kShardCkptVersion));
  const auto size = static_cast<std::uint64_t>(payload.size());
  put_raw(&size, sizeof(size));
  put_raw(payload.data(), payload.size());
  put_raw(&crc, sizeof(crc));
  out.flush();
  if (!out) throw util::IoError("shard checkpoint write failed");
}

void ShardedDetector::restore_checkpoint(std::istream& in) {
  const obs::StageTimer restore_timer(obs::Stage::kCheckpointRestore);
  const auto read_raw = [&](void* p, std::size_t n) {
    in.read(static_cast<char*>(p), static_cast<std::streamsize>(n));
    if (static_cast<std::size_t>(in.gcount()) != n)
      throw util::ParseError("shard checkpoint: truncated");
  };
  std::uint32_t magic = 0, version = 0;
  read_raw(&magic, sizeof(magic));
  if (magic != kShardCkptMagic) throw util::ParseError("shard checkpoint: bad magic");
  read_raw(&version, sizeof(version));
  if (version != kShardCkptVersion)
    throw util::ParseError("shard checkpoint: unsupported version " +
                           std::to_string(version));
  std::uint64_t size = 0;
  read_raw(&size, sizeof(size));
  if (size > kShardCkptMaxPayload)
    throw util::ParseError("shard checkpoint: implausible payload size");
  std::string payload(static_cast<std::size_t>(size), '\0');
  read_raw(payload.data(), payload.size());
  std::uint32_t crc = 0;
  read_raw(&crc, sizeof(crc));
  if (crc != util::crc32(payload.data(), payload.size()))
    throw util::ParseError("shard checkpoint: checksum mismatch");

  detect::PayloadReader r(payload);
  const auto window = r.take<double>();
  const auto grace = r.take<double>();
  const auto shards = r.take<std::uint64_t>();
  const auto vnodes = r.take<std::uint64_t>();
  if (window != config_.window || grace != config_.new_ip_grace)
    throw util::ConfigError(
        "shard checkpoint: saved with different window/grace than this detector");
  if (shards != config_.shards || vnodes != config_.vnodes)
    throw util::ConfigError(
        "shard checkpoint: saved with different shard geometry (shards/vnodes) "
        "than this detector");

  const auto open = r.take<std::uint8_t>();
  const auto window_start = r.take<double>();
  const auto flows_in_window = r.take<std::uint64_t>();
  const auto windows_emitted = r.take<std::uint64_t>();
  const auto flows_total = r.take<std::uint64_t>();
  std::vector<detect::WindowAccumulator> accumulators(config_.shards);
  std::vector<detect::HmCache> caches(config_.shards);
  for (std::size_t s = 0; s < config_.shards; ++s) {
    accumulators[s].decode(r);
    caches[s].decode(r);
  }
  if (!r.exhausted()) throw util::ParseError("shard checkpoint: trailing bytes in payload");

  accumulators_ = std::move(accumulators);
  caches_ = std::move(caches);
  window_open_ = open != 0;
  window_start_ = window_start;
  flows_in_window_ = static_cast<std::size_t>(flows_in_window);
  windows_emitted_ = static_cast<std::size_t>(windows_emitted);
  flows_ingested_total_ = flows_total;
}

void ShardedDetector::save_checkpoint_file(const std::string& path) const {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) throw util::IoError("cannot open checkpoint for writing: " + path);
  save_checkpoint(out);
  out.close();
  if (!out) throw util::IoError("checkpoint write failed: " + path);
}

void ShardedDetector::restore_checkpoint_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw util::IoError("cannot open checkpoint for reading: " + path);
  restore_checkpoint(in);
}

}  // namespace tradeplot::shard
