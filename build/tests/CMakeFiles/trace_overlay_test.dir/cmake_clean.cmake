file(REMOVE_RECURSE
  "CMakeFiles/trace_overlay_test.dir/trace_overlay_test.cpp.o"
  "CMakeFiles/trace_overlay_test.dir/trace_overlay_test.cpp.o.d"
  "trace_overlay_test"
  "trace_overlay_test.pdb"
  "trace_overlay_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trace_overlay_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
