#include "netflow/flow_table.h"

#include <algorithm>

#include "util/error.h"

namespace tradeplot::netflow {

FlowTable::FlowTable(FlowTableConfig config) : config_(config) {
  if (config_.idle_timeout <= 0) throw util::ConfigError("FlowTable: idle_timeout must be > 0");
}

void FlowTable::add_packet(const PacketEvent& pkt) {
  if (pkt.time < last_time_)
    throw util::Error("FlowTable: packets must arrive in time order");
  last_time_ = pkt.time;
  expire_idle(pkt.time);

  const FlowKey key = FlowKey::canonical(pkt.src, pkt.sport, pkt.dst, pkt.dport, pkt.proto);
  auto it = open_.find(key);
  if (it == open_.end()) {
    OpenFlow f;
    // First packet defines the initiator (Argus semantics: record src = the
    // host that initiated the connection).
    f.rec.src = pkt.src;
    f.rec.dst = pkt.dst;
    f.rec.sport = pkt.sport;
    f.rec.dport = pkt.dport;
    f.rec.proto = pkt.proto;
    f.rec.start_time = pkt.time;
    f.initiator_is_a = (key.ip_a == pkt.src && key.port_a == pkt.sport);
    it = open_.emplace(key, std::move(f)).first;
  }

  OpenFlow& f = it->second;
  const bool from_initiator = (pkt.src == f.rec.src && pkt.sport == f.rec.sport);
  f.rec.end_time = pkt.time;
  f.last_packet = pkt.time;
  if (from_initiator) {
    f.rec.pkts_src += 1;
    f.rec.bytes_src += pkt.payload_bytes;
  } else {
    f.rec.pkts_dst += 1;
    f.rec.bytes_dst += pkt.payload_bytes;
  }
  if (f.rec.payload_len == 0 && !pkt.payload.empty()) f.rec.set_payload(pkt.payload);

  bool should_close = false;
  if (pkt.proto == Protocol::kTcp) {
    if (pkt.tcp.syn && !pkt.tcp.ack && from_initiator) f.saw_syn = true;
    if (pkt.tcp.syn && pkt.tcp.ack && !from_initiator) f.saw_synack = true;
    if (pkt.tcp.rst) {
      f.saw_rst = true;
      should_close = true;
    }
    if (pkt.tcp.fin) {
      if (from_initiator) {
        f.saw_fin_src = true;
      } else {
        f.saw_fin_dst = true;
      }
      // Close once both directions have finished.
      if (f.saw_fin_src && f.saw_fin_dst) should_close = true;
    }
  }
  if (config_.active_timeout > 0 &&
      f.rec.end_time - f.rec.start_time >= config_.active_timeout) {
    should_close = true;
  }
  if (should_close) close_flow(key);
}

void FlowTable::expire_idle(double now) {
  // Linear scan; fine for the table sizes the tests and examples use. A
  // production collector would keep an LRU list, which we note but do not
  // need at simulation scale.
  std::vector<FlowKey> expired;
  for (const auto& [key, f] : open_) {
    if (now - f.last_packet > config_.idle_timeout) expired.push_back(key);
  }
  for (const FlowKey& key : expired) close_flow(key);
}

void FlowTable::close_flow(const FlowKey& key) {
  auto it = open_.find(key);
  if (it == open_.end()) return;
  finalize(it->second);
  completed_.push_back(std::move(it->second.rec));
  open_.erase(it);
}

void FlowTable::finalize(OpenFlow& f) {
  FlowRecord& r = f.rec;
  if (r.proto == Protocol::kTcp) {
    if (f.saw_synack || (r.pkts_src > 0 && r.pkts_dst > 0 && !f.saw_rst)) {
      r.state = FlowState::kEstablished;
    } else if (f.saw_rst) {
      r.state = FlowState::kReset;
    } else {
      r.state = FlowState::kAttempted;
    }
  } else {
    r.state = r.pkts_dst > 0 ? FlowState::kEstablished : FlowState::kAttempted;
  }
}

std::vector<FlowRecord> FlowTable::flush() {
  std::vector<FlowKey> keys;
  keys.reserve(open_.size());
  for (const auto& [key, f] : open_) keys.push_back(key);
  for (const FlowKey& key : keys) close_flow(key);
  auto out = std::move(completed_);
  completed_.clear();
  std::sort(out.begin(), out.end(), [](const FlowRecord& a, const FlowRecord& b) {
    return a.start_time < b.start_time;
  });
  return out;
}

std::vector<FlowRecord> FlowTable::take_completed() {
  auto out = std::move(completed_);
  completed_.clear();
  return out;
}

}  // namespace tradeplot::netflow
