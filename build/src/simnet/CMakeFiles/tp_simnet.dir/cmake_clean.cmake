file(REMOVE_RECURSE
  "CMakeFiles/tp_simnet.dir/address.cpp.o"
  "CMakeFiles/tp_simnet.dir/address.cpp.o.d"
  "CMakeFiles/tp_simnet.dir/simulation.cpp.o"
  "CMakeFiles/tp_simnet.dir/simulation.cpp.o.d"
  "libtp_simnet.a"
  "libtp_simnet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tp_simnet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
