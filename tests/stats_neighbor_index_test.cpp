#include "stats/neighbor_index.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>
#include <span>
#include <utility>
#include <vector>

#include "stats/emd.h"
#include "stats/flat_signature.h"
#include "stats/hcluster.h"
#include "stats/simd.h"
#include "util/error.h"
#include "util/rng.h"

namespace tradeplot::stats {
namespace {

// A mix of tight "timer" signatures (several families around shared centres)
// and scattered "human" ones — the post-funnel shape the pruned path exists
// for, plus exact duplicates to exercise tie handling.
std::vector<Signature> mixed_population(util::Pcg32& rng, std::size_t n) {
  std::vector<Signature> sigs;
  sigs.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    Signature s;
    const auto points = static_cast<std::size_t>(rng.uniform_int(2, 24));
    if (i % 3 == 0) {
      const double centre = 30.0 * static_cast<double>(1 + i % 4);
      for (std::size_t k = 0; k < points; ++k) {
        s.push_back({centre + rng.uniform(-1.0, 1.0), rng.uniform(0.1, 2.0)});
      }
    } else {
      for (std::size_t k = 0; k < points; ++k) {
        s.push_back({rng.lognormal(4.0, 1.0), rng.uniform(0.1, 2.0)});
      }
    }
    sigs.push_back(std::move(s));
  }
  // Exact duplicates: distance-0 pairs and merge-height ties.
  if (n > 4) {
    sigs[1] = sigs[0];
    sigs[n - 1] = sigs[n - 2];
  }
  return sigs;
}

std::vector<double> dense_matrix(const FlatSignatureSet& flat) {
  const std::size_t n = flat.size();
  std::vector<double> d(n * n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      d[i * n + j] = d[j * n + i] = emd_1d_presorted(flat.view(i), flat.view(j));
    }
  }
  return d;
}

TEST(NeighborIndex, LowerBoundNeverExceedsExactDistance) {
  util::Pcg32 rng(0x1DF1);
  for (const std::size_t n : {8u, 40u, 96u}) {
    const std::vector<Signature> sigs = mixed_population(rng, n);
    const FlatSignatureSet flat(sigs, 1);
    NeighborIndex index(
        n, [&](std::size_t i, std::size_t j) { return emd_1d_presorted(flat.view(i), flat.view(j)); },
        8, 1);
    index.build_grid(flat, 64, 1);
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = i + 1; j < n; ++j) {
        const double exact = emd_1d_presorted(flat.view(i), flat.view(j));
        ASSERT_LE(index.lower_bound(i, j), exact) << "pair " << i << "," << j;
      }
    }
  }
}

TEST(NeighborIndex, PivotSelectionIsThreadCountInvariant) {
  util::Pcg32 rng(0x1DF2);
  const std::vector<Signature> sigs = mixed_population(rng, 70);
  const FlatSignatureSet flat(sigs, 1);
  const auto pair_fn = [&](std::size_t i, std::size_t j) {
    return emd_1d_presorted(flat.view(i), flat.view(j));
  };
  const NeighborIndex reference(70, pair_fn, 8, 1);
  for (const std::size_t threads : {2u, 8u}) {
    const NeighborIndex index(70, pair_fn, 8, threads);
    EXPECT_EQ(index.pivot_leaves(), reference.pivot_leaves()) << threads << " threads";
    ASSERT_EQ(index.pivot_distances().size(), reference.pivot_distances().size());
    EXPECT_EQ(std::memcmp(index.pivot_distances().data(), reference.pivot_distances().data(),
                          reference.pivot_distances().size() * sizeof(double)),
              0)
        << threads << " threads";
  }
}

TEST(NeighborIndex, DegenerateShapesStaySane) {
  // n == 1: no pairs, index must simply not blow up.
  const std::vector<Signature> one = {{{10.0, 1.0}}};
  const FlatSignatureSet flat_one(one, 1);
  NeighborIndex index_one(
      1, [&](std::size_t i, std::size_t j) { return emd_1d_presorted(flat_one.view(i), flat_one.view(j)); },
      8, 1);
  EXPECT_LE(index_one.pivot_count(), 1u);

  // All leaves coincident: farthest-point selection stops early and the
  // lower bound for identical signatures must be <= 0-distance.
  const std::vector<Signature> same(6, Signature{{42.0, 1.0}});
  const FlatSignatureSet flat_same(same, 1);
  NeighborIndex index_same(
      6, [&](std::size_t i, std::size_t j) { return emd_1d_presorted(flat_same.view(i), flat_same.view(j)); },
      4, 1);
  index_same.build_grid(flat_same, 16, 1);  // single support point: tier disabled
  EXPECT_LT(index_same.pivot_count(), 4u);
  EXPECT_LE(index_same.lower_bound(0, 5), 0.0);
}

void expect_same_dendrogram(const Dendrogram& got, const Dendrogram& want) {
  ASSERT_EQ(got.leaf_count(), want.leaf_count());
  ASSERT_EQ(got.merges().size(), want.merges().size());
  for (std::size_t m = 0; m < want.merges().size(); ++m) {
    EXPECT_EQ(got.merges()[m].left, want.merges()[m].left) << "merge " << m;
    EXPECT_EQ(got.merges()[m].right, want.merges()[m].right) << "merge " << m;
    EXPECT_EQ(got.merges()[m].size, want.merges()[m].size) << "merge " << m;
    const double gh = got.merges()[m].height;
    const double wh = want.merges()[m].height;
    EXPECT_EQ(std::memcmp(&gh, &wh, sizeof gh), 0)
        << "merge " << m << ": " << gh << " vs " << wh;
  }
}

TEST(PrunedLinkage, DendrogramBitIdenticalToDense) {
  util::Pcg32 rng(0x1DF3);
  for (const std::size_t n : {2u, 3u, 17u, 60u, 120u}) {
    const std::vector<Signature> sigs = mixed_population(rng, n);
    const FlatSignatureSet flat(sigs, 1);
    const std::vector<double> matrix = dense_matrix(flat);
    const Dendrogram dense = agglomerative_average_linkage(matrix, n);

    NeighborIndex index(
        n, [&](std::size_t i, std::size_t j) { return emd_1d_presorted(flat.view(i), flat.view(j)); },
        8, 1);
    index.build_grid(flat, 64, 1);
    PruneCounters counters;
    const Dendrogram pruned = agglomerative_average_linkage_pruned(
        n, [&](std::size_t i, std::size_t j) { return matrix[i * n + j]; }, index.features(),
        &counters);
    expect_same_dendrogram(pruned, dense);
    if (n >= 60) {
      EXPECT_GT(counters.skipped_pivot + counters.skipped_grid, 0u) << "n=" << n;
    }
  }
}

TEST(PrunedLinkage, ExactWithNoFeaturesAtAll) {
  // Empty PruneFeatures: every bound is vacuous, nothing is skipped, and the
  // driver degrades to a lazy but complete NN-chain — still bit-identical.
  util::Pcg32 rng(0x1DF4);
  const std::size_t n = 24;
  const std::vector<Signature> sigs = mixed_population(rng, n);
  const FlatSignatureSet flat(sigs, 1);
  const std::vector<double> matrix = dense_matrix(flat);
  const Dendrogram dense = agglomerative_average_linkage(matrix, n);
  PruneCounters counters;
  const Dendrogram pruned = agglomerative_average_linkage_pruned(
      n, [&](std::size_t i, std::size_t j) { return matrix[i * n + j]; }, PruneFeatures{},
      &counters);
  expect_same_dendrogram(pruned, dense);
  EXPECT_EQ(counters.skipped_pivot, 0u);
  EXPECT_EQ(counters.skipped_grid, 0u);
}

TEST(PrunedCut, GroupsMatchDenseCutAcrossFractionsAndSeeds) {
  // The fused UPGMA+cut driver must reproduce the exhaustive
  // dendrogram-then-cut groups exactly — same partition, same ordering —
  // across sizes, cut fractions (including the degenerate 0 and 1), and
  // random populations, while never resolving more than the dense driver.
  for (const std::uint32_t seed : {0x2DF1u, 0x2DF2u, 0x2DF3u}) {
    util::Pcg32 rng(seed);
    for (const std::size_t n : {2u, 3u, 9u, 33u, 90u}) {
      const std::vector<Signature> sigs = mixed_population(rng, n);
      const FlatSignatureSet flat(sigs, 1);
      const std::vector<double> matrix = dense_matrix(flat);
      const Dendrogram dense = agglomerative_average_linkage(matrix, n);

      NeighborIndex index(
          n,
          [&](std::size_t i, std::size_t j) { return emd_1d_presorted(flat.view(i), flat.view(j)); },
          8, 1);
      index.build_grid(flat, 64, 1);
      for (const double fraction : {0.0, 0.05, 0.3, 1.0}) {
        PruneCounters counters;
        const auto got = average_linkage_cut_pruned(
            n, [&](std::size_t i, std::size_t j) { return matrix[i * n + j]; },
            index.features(), fraction, &counters);
        const auto want = dense.cut_top_fraction(fraction);
        ASSERT_EQ(got, want) << "seed=" << seed << " n=" << n << " fraction=" << fraction;
      }
    }
  }
}

TEST(PrunedCut, WorksWithoutFeaturesAndRejectsBadInput) {
  util::Pcg32 rng(0x2DF4);
  const std::size_t n = 21;
  const std::vector<Signature> sigs = mixed_population(rng, n);
  const FlatSignatureSet flat(sigs, 1);
  const std::vector<double> matrix = dense_matrix(flat);
  const Dendrogram dense = agglomerative_average_linkage(matrix, n);
  const auto leaf = [&](std::size_t i, std::size_t j) { return matrix[i * n + j]; };
  EXPECT_EQ(average_linkage_cut_pruned(n, leaf, PruneFeatures{}, 0.05),
            dense.cut_top_fraction(0.05));
  EXPECT_EQ(average_linkage_cut_pruned(1, leaf, PruneFeatures{}, 0.05),
            (std::vector<std::vector<std::size_t>>{{0}}));
  EXPECT_THROW((void)average_linkage_cut_pruned(0, leaf, PruneFeatures{}, 0.05),
               util::ConfigError);
  EXPECT_THROW((void)average_linkage_cut_pruned(n, leaf, PruneFeatures{}, -0.1),
               util::ConfigError);
  EXPECT_THROW((void)average_linkage_cut_pruned(n, leaf, PruneFeatures{}, 1.1),
               util::ConfigError);
}

TEST(PrunedLinkage, BatchResolutionKeepsDendrogramBitIdentical) {
  // The gated-lookahead batch path (PruneOptions::batch_leaf) may resolve
  // more pairs than the strict serial gate, but every value is exact, so the
  // dendrogram must match the dense reference bit-for-bit — at every worker
  // count, with the observer seeing each batch-resolved pair exactly once.
  util::Pcg32 rng(0x1DF5);
  for (const std::size_t n : {17u, 60u, 120u}) {
    const std::vector<Signature> sigs = mixed_population(rng, n);
    const FlatSignatureSet flat(sigs, 1);
    const std::vector<double> matrix = dense_matrix(flat);
    const Dendrogram dense = agglomerative_average_linkage(matrix, n);
    NeighborIndex index(
        n, [&](std::size_t i, std::size_t j) { return emd_1d_presorted(flat.view(i), flat.view(j)); },
        8, 1);
    index.build_grid(flat, 64, 1);
    for (const std::size_t threads : {1u, 2u, 8u}) {
      PruneOptions options;
      options.threads = threads;
      std::size_t observed = 0;
      options.batch_leaf = [&](std::span<const std::pair<std::uint32_t, std::uint32_t>> pairs,
                               double* out) {
        for (std::size_t k = 0; k < pairs.size(); ++k)
          out[k] = matrix[pairs[k].first * n + pairs[k].second];
      };
      options.on_leaf_resolved = [&](std::size_t i, std::size_t j, double v) {
        ++observed;
        EXPECT_EQ(std::memcmp(&v, &matrix[i * n + j], sizeof v), 0) << i << "," << j;
      };
      PruneCounters counters;
      const Dendrogram pruned = agglomerative_average_linkage_pruned(
          n, [&](std::size_t i, std::size_t j) { return matrix[i * n + j]; }, index.features(),
          options, &counters);
      SCOPED_TRACE(testing::Message() << "n=" << n << " threads=" << threads);
      expect_same_dendrogram(pruned, dense);
    }
  }
}

TEST(NeighborIndex, BoundsAdmissibleUnderSimdSweep) {
  // Brute-force cross-check of the vectorized pass-1 path: for every active
  // "top" leaf, run the same pivot_interval_sweep + margin pass the engine
  // runs over its column-major pivot storage, and verify each candidate's
  // margined interval brackets the exact distance. This is the admissibility
  // property the whole elimination tier rides on.
  util::Pcg32 rng(0x1DF6);
  const std::size_t n = 72;
  const std::vector<Signature> sigs = mixed_population(rng, n);
  const FlatSignatureSet flat(sigs, 1);
  NeighborIndex index(
      n, [&](std::size_t i, std::size_t j) { return emd_1d_presorted(flat.view(i), flat.view(j)); },
      8, 1);
  const PruneFeatures f = index.features();
  // Engine layout: column-major, cols[p * n + k] = pivot_distances[k * p + p].
  std::vector<double> cols(f.pivots * n);
  for (std::size_t p = 0; p < f.pivots; ++p)
    for (std::size_t k = 0; k < n; ++k) cols[p * n + k] = f.pivot_distances[k * f.pivots + p];
  std::vector<double> top_vals(f.pivots);
  std::vector<double> lo(n);
  std::vector<double> hi(n);
  for (std::size_t top = 0; top < n; ++top) {
    for (std::size_t p = 0; p < f.pivots; ++p) top_vals[p] = cols[p * n + top];
    simd::pivot_interval_sweep(cols.data(), n, f.pivots, top_vals.data(), n, lo.data(),
                               hi.data());
    hi[top] = std::numeric_limits<double>::infinity();
    (void)simd::margin_min_sweep(lo.data(), hi.data(), n);
    for (std::size_t j = 0; j < n; ++j) {
      if (j == top) continue;
      const double exact = emd_1d_presorted(flat.view(top), flat.view(j));
      ASSERT_LE(lo[j], exact) << "top=" << top << " j=" << j;
      ASSERT_GE(hi[j], exact) << "top=" << top << " j=" << j;
    }
  }
}

TEST(SimdL1, MatchesScalarLoop) {
  util::Pcg32 rng(0x51D1);
  for (const std::size_t n : {0u, 1u, 3u, 8u, 64u, 257u}) {
    std::vector<double> a(n), b(n);
    for (std::size_t i = 0; i < n; ++i) {
      a[i] = rng.uniform(-5.0, 5.0);
      b[i] = rng.uniform(-5.0, 5.0);
    }
    double scalar = 0.0;
    for (std::size_t i = 0; i < n; ++i) scalar += std::abs(a[i] - b[i]);
    // The dispatched kernel may reassociate; equality up to a tiny relative
    // tolerance is the contract (bounds consume it through with_margin).
    EXPECT_NEAR(simd::l1_distance(a.data(), b.data(), n), scalar,
                1e-12 * (1.0 + scalar));
  }
}

}  // namespace
}  // namespace tradeplot::stats
