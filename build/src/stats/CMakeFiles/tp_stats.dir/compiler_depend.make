# Empty compiler generated dependencies file for tp_stats.
# This may be replaced when dependencies are built.
