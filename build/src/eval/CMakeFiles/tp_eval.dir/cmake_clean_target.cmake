file(REMOVE_RECURSE
  "libtp_eval.a"
)
