#include "p2p/kademlia.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "util/error.h"

namespace tradeplot::p2p {
namespace {

Contact contact(std::uint64_t hi, std::uint64_t lo, std::uint32_t ip = 0) {
  return Contact{NodeId(hi, lo), simnet::Ipv4(ip ? ip : static_cast<std::uint32_t>(lo)), 7871};
}

TEST(KBucket, InsertAndCapacity) {
  KBucket bucket(3);
  EXPECT_TRUE(bucket.upsert(contact(0, 1)));
  EXPECT_TRUE(bucket.upsert(contact(0, 2)));
  EXPECT_TRUE(bucket.upsert(contact(0, 3)));
  EXPECT_TRUE(bucket.full());
  EXPECT_FALSE(bucket.upsert(contact(0, 4)));  // drop-new when full
  EXPECT_EQ(bucket.contacts().size(), 3u);
}

TEST(KBucket, UpsertRefreshesToMostRecent) {
  KBucket bucket(3);
  bucket.upsert(contact(0, 1));
  bucket.upsert(contact(0, 2));
  bucket.upsert(contact(0, 1));  // refresh
  ASSERT_EQ(bucket.contacts().size(), 2u);
  EXPECT_EQ(bucket.contacts().back().id, NodeId(0, 1));
}

TEST(KBucket, Remove) {
  KBucket bucket(2);
  bucket.upsert(contact(0, 1));
  EXPECT_TRUE(bucket.remove(NodeId(0, 1)));
  EXPECT_FALSE(bucket.remove(NodeId(0, 1)));
  EXPECT_TRUE(bucket.contacts().empty());
}

TEST(RoutingTable, IgnoresSelf) {
  RoutingTable table(NodeId(0, 42));
  EXPECT_FALSE(table.insert(contact(0, 42)));
  EXPECT_EQ(table.size(), 0u);
}

TEST(RoutingTable, ClosestReturnsByXorDistance) {
  RoutingTable table(NodeId(0, 0));
  table.insert(contact(0, 0b0001));
  table.insert(contact(0, 0b0010));
  table.insert(contact(0, 0b1000));
  table.insert(contact(0, 0b1111));
  const auto closest = table.closest(NodeId(0, 0b0011), 2);
  ASSERT_EQ(closest.size(), 2u);
  // d(0011,0010)=1, d(0011,0001)=2, d(0011,1111)=12, d(0011,1000)=11.
  EXPECT_EQ(closest[0].id, NodeId(0, 0b0010));
  EXPECT_EQ(closest[1].id, NodeId(0, 0b0001));
}

TEST(RoutingTable, RemoveShrinksSize) {
  RoutingTable table(NodeId(0, 0));
  table.insert(contact(0, 5));
  table.insert(contact(0, 9));
  EXPECT_EQ(table.size(), 2u);
  EXPECT_TRUE(table.remove(NodeId(0, 5)));
  EXPECT_EQ(table.size(), 1u);
}

TEST(RoutingTable, RejectsZeroK) {
  EXPECT_THROW(RoutingTable(NodeId(0, 0), 0), util::ConfigError);
}

TEST(Overlay, AddFindOnline) {
  Overlay overlay;
  overlay.add_node(contact(0, 1));
  EXPECT_TRUE(overlay.is_online(NodeId(0, 1)));
  overlay.set_online(NodeId(0, 1), false);
  EXPECT_FALSE(overlay.is_online(NodeId(0, 1)));
  EXPECT_TRUE(overlay.find(NodeId(0, 1)).has_value());
  EXPECT_FALSE(overlay.find(NodeId(0, 2)).has_value());
  EXPECT_THROW(overlay.add_node(contact(0, 1)), util::ConfigError);
}

TEST(Overlay, RandomNodeFromEmptyIsNull) {
  Overlay overlay;
  util::Pcg32 rng(1);
  EXPECT_FALSE(overlay.random_node(rng).has_value());
}

TEST(Overlay, ClosestIsSortedByDistance) {
  Overlay overlay;
  util::Pcg32 rng(2);
  for (int i = 1; i <= 50; ++i) overlay.add_node(contact(0, static_cast<std::uint64_t>(i * 7)));
  const NodeId target(0, 100);
  const auto closest = overlay.closest(target, 10);
  ASSERT_EQ(closest.size(), 10u);
  for (std::size_t i = 1; i < closest.size(); ++i) {
    EXPECT_LE(closest[i - 1].id.distance_to(target), closest[i].id.distance_to(target));
  }
}

class LookupFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    util::Pcg32 seed_rng(77);
    for (int i = 0; i < 200; ++i) {
      const Contact c{NodeId::random(seed_rng),
                      simnet::Ipv4(static_cast<std::uint32_t>(0x08000000 + i)), 7871};
      overlay_.add_node(c);
      all_.push_back(c);
    }
  }

  Overlay overlay_;
  std::vector<Contact> all_;
};

TEST_F(LookupFixture, FindsGloballyClosestNodes) {
  util::Pcg32 rng(1);
  RoutingTable table(NodeId::random(rng));
  for (int i = 0; i < 10; ++i) table.insert(all_[static_cast<std::size_t>(i * 19)]);

  const NodeId target = NodeId::random(rng);
  const LookupResult result = iterative_find_node(overlay_, table, target, LookupParams{}, rng);

  ASSERT_FALSE(result.closest.empty());
  EXPECT_TRUE(result.converged);
  // The best discovered contact must be the true global best (all online).
  auto sorted = all_;
  std::sort(sorted.begin(), sorted.end(), [&](const Contact& a, const Contact& b) {
    return a.id.distance_to(target) < b.id.distance_to(target);
  });
  EXPECT_EQ(result.closest.front().id, sorted.front().id);
}

TEST_F(LookupFixture, OfflineNodesShowAsFailedProbes) {
  util::Pcg32 rng(2);
  // Take a third of the overlay offline.
  for (std::size_t i = 0; i < all_.size(); i += 3) overlay_.set_online(all_[i].id, false);
  RoutingTable table(NodeId::random(rng));
  for (int i = 0; i < 12; ++i) table.insert(all_[static_cast<std::size_t>(i)]);

  const LookupResult result =
      iterative_find_node(overlay_, table, NodeId::random(rng), LookupParams{}, rng);
  int failed = 0;
  for (const Probe& probe : result.probes) {
    EXPECT_EQ(probe.responded, overlay_.is_online(probe.peer.id));
    if (!probe.responded) ++failed;
  }
  // All returned "closest" contacts must have responded.
  for (const Contact& c : result.closest) EXPECT_TRUE(overlay_.is_online(c.id));
  EXPECT_GT(result.probes.size(), 0u);
  (void)failed;
}

TEST_F(LookupFixture, EmptyRoutingTableProducesNoProbes) {
  util::Pcg32 rng(3);
  RoutingTable table(NodeId::random(rng));
  const LookupResult result =
      iterative_find_node(overlay_, table, NodeId::random(rng), LookupParams{}, rng);
  EXPECT_TRUE(result.probes.empty());
  EXPECT_TRUE(result.closest.empty());
}

TEST_F(LookupFixture, ProbeCountBoundedByRoundsTimesAlpha) {
  util::Pcg32 rng(4);
  RoutingTable table(NodeId::random(rng));
  for (const Contact& c : all_) table.insert(c);
  LookupParams params;
  params.alpha = 2;
  params.max_rounds = 4;
  const LookupResult result =
      iterative_find_node(overlay_, table, NodeId::random(rng), params, rng);
  EXPECT_LE(result.probes.size(), params.alpha * params.max_rounds);
}

TEST_F(LookupFixture, LookupUpdatesRoutingTable) {
  util::Pcg32 rng(5);
  RoutingTable table(NodeId::random(rng));
  for (int i = 0; i < 5; ++i) table.insert(all_[static_cast<std::size_t>(i * 31)]);
  const std::size_t before = table.size();
  (void)iterative_find_node(overlay_, table, NodeId::random(rng), LookupParams{}, rng);
  EXPECT_GT(table.size(), before);  // learned responders' neighbours
}

}  // namespace
}  // namespace tradeplot::p2p
