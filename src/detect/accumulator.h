// Per-window, per-host feature accumulation, factored out of
// StreamingDetector so one window's state can be owned by different drivers:
// the single-threaded streaming detector keeps exactly one accumulator, the
// sharded detector (src/shard/) keeps one per worker shard and routes each
// flow to the shard owning its internal host.
//
// The accumulator knows nothing about windows rolling or verdicts — it only
// absorbs the initiator/responder sides of flows, enforces the timing-sample
// budget, finalizes into a FeatureMap through the same
// finalize_destinations() as the batch extractor, and round-trips its state
// through the checkpoint payload codec. The byte layout encode() produces is
// exactly the per-host section of the v2 TPCK checkpoint, so extracting this
// class changed no checkpoint bytes.
#pragma once

#include <cstdint>
#include <unordered_map>

#include "detect/features.h"

namespace tradeplot::detect {

class PayloadReader;
class PayloadWriter;

/// Accumulated state for one internal host within the current window.
struct HostWindowState {
  HostFeatures features;
  PerDestinationTimes per_dst_times;  // dst -> initiated-flow start times
  std::size_t timing_samples = 0;     // total start times buffered above
  bool seen = false;
  bool timing_shed = false;  // budget shed dropped this host's timing state
};

class WindowAccumulator {
 public:
  /// Records `src` initiating a flow to `dst` at time `t`. Buffers the start
  /// time for churn/interstitial evidence unless the host was already shed;
  /// when `timing_budget` is non-zero and the buffered total crosses it, the
  /// lowest-evidence hosts are shed (fewest samples first, ties by address)
  /// down to ~3/4 of the budget. The caller has already decided `src` is
  /// internal.
  void apply_initiator(simnet::Ipv4 src, simnet::Ipv4 dst, double t,
                       std::uint64_t bytes_src, bool failed, std::size_t timing_budget);

  /// Records internal host `dst` answering a successful flow at time `t`.
  void apply_responder(simnet::Ipv4 dst, double t, std::uint64_t bytes_dst);

  /// Finalizes every host's per-destination state (churn + interstitials)
  /// via finalize_destinations and moves the features out. Destructive: the
  /// per-host state is consumed; call reset() before reusing the
  /// accumulator for the next window.
  [[nodiscard]] FeatureMap finalize(double grace);

  /// Drops all per-host state and the shed bookkeeping (window roll).
  void reset();

  [[nodiscard]] std::size_t host_count() const { return hosts_.size(); }
  [[nodiscard]] std::size_t timing_samples() const { return timing_samples_; }
  [[nodiscard]] std::size_t hosts_shed() const { return hosts_shed_; }
  [[nodiscard]] std::size_t timing_samples_shed() const { return timing_samples_shed_; }

  /// Serializes (timing bookkeeping + per-host records) in the v2 TPCK
  /// payload order; decode() is the exact inverse and throws
  /// util::ParseError on truncation.
  void encode(PayloadWriter& w) const;
  void decode(PayloadReader& r);

 private:
  void shed_timing_state(std::size_t timing_budget);

  std::unordered_map<simnet::Ipv4, HostWindowState> hosts_;
  std::size_t timing_samples_ = 0;  // buffered across all hosts
  std::size_t hosts_shed_ = 0;
  std::size_t timing_samples_shed_ = 0;
};

}  // namespace tradeplot::detect
