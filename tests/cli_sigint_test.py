#!/usr/bin/env python3
"""Kill-and-compare regression for campus_monitor --stream graceful SIGINT.

The production ingestion contract: an operator interrupting a live stream
must lose nothing —

  1. a trace is fed through a FIFO (so the monitor is genuinely mid-stream,
     blocked on a refill, when the signal lands);
  2. SIGINT makes the monitor print the interrupted marker, write a final
     checkpoint describing the still-open window, flush the partial window,
     and exit 0;
  3. a second run resumes from that checkpoint over the full trace file;
  4. the per-window verdict blocks of run 1 and run 2, merged with
     last-entry-wins on the window index (the resumed run supersedes the
     partial window), are bit-identical to one uninterrupted run.

Run by ctest as CliSigintTest; binary paths arrive as flags.
"""

import argparse
import os
import re
import signal
import subprocess
import sys
import tempfile
import time
from pathlib import Path


def check(condition, message):
    if not condition:
        print(f"FAIL: {message}", file=sys.stderr)
        sys.exit(1)


def run(cmd, **kwargs):
    print("+", " ".join(str(c) for c in cmd), flush=True)
    return subprocess.run(
        [str(c) for c in cmd], capture_output=True, text=True, timeout=240, **kwargs
    )


def window_blocks(text):
    """Maps window index -> the full verdict block ('=== window i ...' plus
    its host lines), exactly as printed."""
    blocks, cur_idx, cur = {}, None, []
    for line in text.splitlines(keepends=True):
        m = re.match(r"=== window (\d+) ", line)
        if m:
            if cur_idx is not None:
                blocks[cur_idx] = "".join(cur)
            cur_idx, cur = int(m.group(1)), [line]
        elif cur_idx is not None and (line.startswith("  ") or line.strip() == ""):
            cur.append(line)
        elif cur_idx is not None:
            blocks[cur_idx] = "".join(cur)
            cur_idx, cur = None, []
    if cur_idx is not None:
        blocks[cur_idx] = "".join(cur)
    return blocks


def main():
    parser = argparse.ArgumentParser()
    parser.add_argument("--campus-monitor", required=True, type=Path)
    parser.add_argument("--trace-tool", required=True, type=Path)
    args = parser.parse_args()

    tmp = Path(tempfile.mkdtemp(prefix="tp_sigint_"))
    trace = tmp / "trace.csv"
    fifo = tmp / "feed.csv"
    checkpoint = tmp / "monitor.ckpt"

    gen = run([args.trace_tool, "generate", trace, "3"])
    check(gen.returncode == 0, f"trace_tool generate failed: {gen.stderr}")
    lines = trace.read_bytes().splitlines(keepends=True)
    check(len(lines) > 20000, f"trace too small to interrupt meaningfully: {len(lines)}")

    # Run 1: stream from a FIFO, interrupt once ~60% of the lines are in and
    # the monitor is blocked waiting for more.
    os.mkfifo(fifo)
    with subprocess.Popen(
        [str(args.campus_monitor), "--stream", str(fifo), "3600",
         "--checkpoint", str(checkpoint)],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
    ) as monitor:
        feed_until = int(len(lines) * 0.6)
        with open(fifo, "wb") as feed:  # opening unblocks the monitor's open()
            feed.write(b"".join(lines[:feed_until]))
            feed.flush()
            time.sleep(1.0)  # let the monitor drain the FIFO and block on refill
            monitor.send_signal(signal.SIGINT)
            try:
                run1_out, _ = monitor.communicate(timeout=60)
            except subprocess.TimeoutExpired:
                monitor.kill()
                check(False, "monitor did not exit after SIGINT")
        check(monitor.returncode == 0, f"SIGINT exit code {monitor.returncode}, want 0")

    check("=== interrupted: final checkpoint" in run1_out,
          "interrupted marker missing from run 1 output")
    check(checkpoint.stat().st_size > 0, "final checkpoint not written")
    run1 = window_blocks(run1_out)
    check(len(run1) >= 2, f"run 1 produced too few windows: {sorted(run1)}")

    # Run 2: resume over the full trace file.
    resumed = run([args.campus_monitor, "--stream", trace, "3600",
                   "--resume", checkpoint])
    check(resumed.returncode == 0, f"resume run failed: {resumed.stdout}{resumed.stderr}")
    check("resumed from" in resumed.stdout, "resume banner missing")
    run2 = window_blocks(resumed.stdout)

    # Reference: one uninterrupted run.
    ref = run([args.campus_monitor, "--stream", trace, "3600"])
    check(ref.returncode == 0, "reference run failed")
    expected = window_blocks(ref.stdout)

    merged = dict(run1)
    merged.update(run2)  # last wins: run 2 supersedes run 1's partial window
    check(sorted(merged) == sorted(expected),
          f"window sets differ: merged {sorted(merged)} vs reference {sorted(expected)}")
    for idx, block in expected.items():
        check(merged[idx] == block,
              f"window {idx} differs between merged interrupted runs and reference")
    print(f"PASS: {len(expected)} windows bit-identical across SIGINT + resume")


if __name__ == "__main__":
    main()
