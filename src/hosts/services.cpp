#include "hosts/services.h"

#include <algorithm>

#include "simnet/simulation.h"

namespace tradeplot::hosts {

namespace {
constexpr std::string_view kSmtp = "EHLO mail.campus.edu\r\n";
constexpr std::string_view kDns = "\x12\x34\x01\x00\x00\x01";  // query header bytes
constexpr std::string_view kNtp = "\x23\x00\x06\xec";          // NTPv4 client mode
}  // namespace

MailServer::MailServer(netflow::AppEnv env, simnet::Ipv4 self, util::Pcg32 rng,
                       MailServerConfig config)
    : env_(std::move(env)), rng_(rng), emit_(&env_, self, &rng_), config_(config) {
  for (int i = 0; i < config_.provider_pool; ++i) providers_.push_back(env_.external_addr());
}

void MailServer::start() {
  outbound_loop();
  inbound_loop();
}

void MailServer::outbound_loop() {
  const double gap = rng_.exponential(3600.0 / config_.outbound_per_hour);
  if (emit_.now() + gap >= env_.window_end) return;
  env_.sim->schedule_after(gap, [this] {
    const simnet::Ipv4 mx =
        rng_.chance(config_.revisit_prob) ? rng_.pick(providers_) : env_.external_addr();
    if (rng_.chance(config_.fail_prob)) {
      emit_.tcp_failed(mx, 25, rng_.chance(0.4));
    } else {
      emit_.tcp(mx, 25, static_cast<std::uint64_t>(rng_.uniform(config_.msg_lo, config_.msg_hi)),
                static_cast<std::uint64_t>(rng_.uniform(300, 2000)), rng_.uniform(0.5, 15.0),
                kSmtp);
    }
    outbound_loop();
  });
}

void MailServer::inbound_loop() {
  const double gap = rng_.exponential(3600.0 / config_.inbound_per_hour);
  if (emit_.now() + gap >= env_.window_end) return;
  env_.sim->schedule_after(gap, [this] {
    emit_.inbound_tcp(env_.external_addr(), 25,
                      static_cast<std::uint64_t>(rng_.uniform(config_.msg_lo, config_.msg_hi)),
                      static_cast<std::uint64_t>(rng_.uniform(300, 2000)),
                      rng_.uniform(0.5, 15.0), kSmtp);
    inbound_loop();
  });
}

DnsClient::DnsClient(netflow::AppEnv env, simnet::Ipv4 self, util::Pcg32 rng,
                     DnsClientConfig config)
    : env_(std::move(env)), rng_(rng), emit_(&env_, self, &rng_), config_(config) {
  for (int i = 0; i < config_.resolvers; ++i) resolvers_.push_back(env_.external_addr());
}

void DnsClient::start() { query_loop(); }

void DnsClient::query_loop() {
  // Bursty human-driven query arrivals (applications resolving names).
  const double gap = rng_.exponential(3600.0 / config_.queries_per_hour);
  if (emit_.now() + gap >= env_.window_end) return;
  env_.sim->schedule_after(gap, [this] {
    const simnet::Ipv4 resolver = rng_.pick(resolvers_);
    emit_.udp(resolver, 53, static_cast<std::uint64_t>(rng_.uniform_int(40, 80)),
              static_cast<std::uint64_t>(rng_.uniform_int(80, 512)),
              !rng_.chance(config_.fail_prob), kDns);
    query_loop();
  });
}

NtpClient::NtpClient(netflow::AppEnv env, simnet::Ipv4 self, util::Pcg32 rng,
                     NtpClientConfig config)
    : env_(std::move(env)), rng_(rng), emit_(&env_, self, &rng_), config_(config) {
  for (int i = 0; i < config_.servers; ++i) servers_.push_back(env_.external_addr());
}

void NtpClient::start() {
  simnet::PeriodicProcess::start(
      *env_.sim, rng_.uniform(0.0, config_.period), env_.window_end,
      [this] { return config_.period + rng_.uniform(-config_.jitter, config_.jitter); },
      [this](double) {
        for (const simnet::Ipv4 server : servers_) emit_.udp(server, 123, 48, 48, true, kNtp);
      });
}

}  // namespace tradeplot::hosts
