
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/netflow/classifier.cpp" "src/netflow/CMakeFiles/tp_netflow.dir/classifier.cpp.o" "gcc" "src/netflow/CMakeFiles/tp_netflow.dir/classifier.cpp.o.d"
  "/root/repo/src/netflow/flow_emit.cpp" "src/netflow/CMakeFiles/tp_netflow.dir/flow_emit.cpp.o" "gcc" "src/netflow/CMakeFiles/tp_netflow.dir/flow_emit.cpp.o.d"
  "/root/repo/src/netflow/flow_key.cpp" "src/netflow/CMakeFiles/tp_netflow.dir/flow_key.cpp.o" "gcc" "src/netflow/CMakeFiles/tp_netflow.dir/flow_key.cpp.o.d"
  "/root/repo/src/netflow/flow_record.cpp" "src/netflow/CMakeFiles/tp_netflow.dir/flow_record.cpp.o" "gcc" "src/netflow/CMakeFiles/tp_netflow.dir/flow_record.cpp.o.d"
  "/root/repo/src/netflow/flow_table.cpp" "src/netflow/CMakeFiles/tp_netflow.dir/flow_table.cpp.o" "gcc" "src/netflow/CMakeFiles/tp_netflow.dir/flow_table.cpp.o.d"
  "/root/repo/src/netflow/io.cpp" "src/netflow/CMakeFiles/tp_netflow.dir/io.cpp.o" "gcc" "src/netflow/CMakeFiles/tp_netflow.dir/io.cpp.o.d"
  "/root/repo/src/netflow/trace_set.cpp" "src/netflow/CMakeFiles/tp_netflow.dir/trace_set.cpp.o" "gcc" "src/netflow/CMakeFiles/tp_netflow.dir/trace_set.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/tp_util.dir/DependInfo.cmake"
  "/root/repo/build/src/simnet/CMakeFiles/tp_simnet.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
