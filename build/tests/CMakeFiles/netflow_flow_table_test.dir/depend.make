# Empty dependencies file for netflow_flow_table_test.
# This may be replaced when dependencies are built.
