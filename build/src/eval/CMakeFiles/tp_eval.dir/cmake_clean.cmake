file(REMOVE_RECURSE
  "CMakeFiles/tp_eval.dir/day.cpp.o"
  "CMakeFiles/tp_eval.dir/day.cpp.o.d"
  "CMakeFiles/tp_eval.dir/experiments.cpp.o"
  "CMakeFiles/tp_eval.dir/experiments.cpp.o.d"
  "CMakeFiles/tp_eval.dir/metrics.cpp.o"
  "CMakeFiles/tp_eval.dir/metrics.cpp.o.d"
  "libtp_eval.a"
  "libtp_eval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tp_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
