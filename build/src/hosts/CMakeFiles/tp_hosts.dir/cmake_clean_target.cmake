file(REMOVE_RECURSE
  "libtp_hosts.a"
)
