// The paper's scalar tests: initial data reduction, θ_vol, and θ_churn.
//
// All thresholds are *relative* — percentiles of the feature's distribution
// over the live input population — which is the paper's evasion-resistance
// argument (§VI): the attacker cannot know the value it must beat without
// measuring everyone else's traffic at the same vantage point.
#pragma once

#include <vector>

#include "detect/features.h"

namespace tradeplot::detect {

/// Hosts under consideration; every test maps a HostSet to a smaller one.
using HostSet = std::vector<simnet::Ipv4>;

/// Initial data reduction (§V-A): keeps hosts whose failed-connection rate
/// exceeds the `percentile`-th percentile (paper: the median) computed over
/// the input hosts that initiated at least one successful flow. Hosts that
/// never initiated a successful flow are dropped from consideration
/// entirely, as in the paper ("only hosts that initiated successful
/// connections ... were included").
/// How a host's failed rate is compared against the reduction threshold.
/// The paper says hosts whose rate "exceeds" the median are kept, i.e.
/// strictly `>` — but when many eligible hosts share one failed rate
/// (common in synthetic or quiet traffic) the median *equals* that rate and
/// strict comparison empties the reduced set, short-circuiting the whole
/// pipeline. kStrictThenInclusive keeps the paper's strict reading and
/// falls back to `>=` only in exactly that degenerate case (every kept host
/// then ties the threshold, so no host below the median ever enters).
enum class ReductionComparison {
  kStrictThenInclusive,  // `>`; retry with `>=` if that selects nobody
  kStrict,               // `>` always (the paper, literally)
  kInclusive,            // `>=` always
};

struct DataReductionConfig {
  double percentile = 0.5;
  ReductionComparison comparison = ReductionComparison::kStrictThenInclusive;
};
[[nodiscard]] HostSet data_reduction(const FeatureMap& features, const HostSet& input,
                                     const DataReductionConfig& config = {});

/// The threshold value data_reduction would use on this input (for the
/// paper's Fig. 5 commentary and the evasion analyses).
[[nodiscard]] double data_reduction_threshold(const FeatureMap& features, const HostSet& input,
                                              const DataReductionConfig& config = {});

/// θ_vol (§IV-A): keeps hosts whose volume (default: average bytes uploaded
/// per flow) is *below* τ_vol = the `percentile`-th percentile over the
/// input hosts.
struct VolumeTestConfig {
  double percentile = 0.5;
  VolumeMetric metric = VolumeMetric::kSentPerFlow;
};
[[nodiscard]] HostSet volume_test(const FeatureMap& features, const HostSet& input,
                                  const VolumeTestConfig& config = {});
[[nodiscard]] double volume_threshold(const FeatureMap& features, const HostSet& input,
                                      const VolumeTestConfig& config = {});

/// θ_churn (§IV-B): keeps hosts whose new-IP fraction is *below* τ_churn =
/// the `percentile`-th percentile over the input hosts.
struct ChurnTestConfig {
  double percentile = 0.5;
};
[[nodiscard]] HostSet churn_test(const FeatureMap& features, const HostSet& input,
                                 const ChurnTestConfig& config = {});
[[nodiscard]] double churn_threshold(const FeatureMap& features, const HostSet& input,
                                     const ChurnTestConfig& config = {});

/// Set union helper (inputs need not be sorted; output is sorted, unique).
[[nodiscard]] HostSet host_union(const HostSet& a, const HostSet& b);

/// All internal hosts present in a feature map, sorted.
[[nodiscard]] HostSet all_hosts(const FeatureMap& features);

}  // namespace tradeplot::detect
