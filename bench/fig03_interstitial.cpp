// Figure 3: per-destination flow interstitial-time distributions for a
// Storm bot, a Nugache bot, a BitTorrent host, and a Gnutella host.
//
// Paper shape: the Plotters show sharp periodic combs (Nugache at ~10/25/50
// seconds), the Traders show diffuse human-scale spreads.
#include <algorithm>

#include "bench/bench_util.h"
#include "detect/features.h"
#include "stats/histogram.h"

using namespace tradeplot;

namespace {

void print_histogram(const char* label, const std::vector<double>& samples) {
  std::printf("\n  %s (%zu interstitial samples)\n", label, samples.size());
  if (samples.size() < 4) {
    std::printf("    too few samples\n");
    return;
  }
  const stats::Histogram hist = stats::Histogram::with_fd_width(samples);
  std::printf("    Freedman-Diaconis bin width: %.3f s\n", hist.bin_width());
  // Top mass bins, sorted by probability.
  struct Bin {
    double center;
    double mass;
  };
  std::vector<Bin> bins;
  const auto pmf = hist.pmf();
  for (std::size_t i = 0; i < pmf.size(); ++i) {
    if (pmf[i] > 0) bins.push_back({hist.bin_center(i), pmf[i]});
  }
  std::sort(bins.begin(), bins.end(), [](const Bin& a, const Bin& b) { return a.mass > b.mass; });
  const std::size_t show = std::min<std::size_t>(bins.size(), 8);
  for (std::size_t i = 0; i < show; ++i) {
    std::printf("    %9.1f s : %6.2f%%  |%s\n", bins[i].center, bins[i].mass * 100.0,
                std::string(static_cast<std::size_t>(bins[i].mass * 120.0), '#').c_str());
  }
  std::printf("    (%zu non-empty bins total)\n", bins.size());
}

const detect::HostFeatures* busiest_of_kind(const netflow::TraceSet& trace,
                                            const detect::FeatureMap& features,
                                            netflow::HostKind kind) {
  const detect::HostFeatures* best = nullptr;
  for (const auto& [host, f] : features) {
    if (trace.kind_of(host) != kind) continue;
    if (best == nullptr || f.interstitials.size() > best->interstitials.size()) best = &f;
  }
  return best;
}

}  // namespace

int main() {
  benchx::header("Figure 3 - per-destination flow interstitial time distributions (one day)");

  const eval::EvalConfig cfg = benchx::paper_eval_config();
  const netflow::TraceSet storm = botnet::generate_storm_trace(cfg.honeynet);
  const netflow::TraceSet nugache = botnet::generate_nugache_trace(cfg.honeynet);
  const netflow::TraceSet campus = trace::generate_campus_trace(cfg.campus);

  detect::FeatureExtractorConfig fx;
  fx.is_internal = detect::default_internal_predicate;
  const auto storm_f = detect::extract_features(storm, fx);
  const auto nugache_f = detect::extract_features(nugache, fx);
  const auto campus_f = detect::extract_features(campus, fx);

  print_histogram("(a) Storm bot",
                  busiest_of_kind(storm, storm_f, netflow::HostKind::kStorm)->interstitials);
  print_histogram("(b) Nugache bot",
                  busiest_of_kind(nugache, nugache_f, netflow::HostKind::kNugache)->interstitials);
  print_histogram(
      "(c) BitTorrent host",
      busiest_of_kind(campus, campus_f, netflow::HostKind::kBitTorrent)->interstitials);
  print_histogram("(d) Gnutella host",
                  busiest_of_kind(campus, campus_f, netflow::HostKind::kGnutella)->interstitials);

  benchx::paper_reference(
      "Fig. 3: 'These Plotters exhibit significant periodicity in their\n"
      "communications. For example, Nugache can be observed to communicate\n"
      "at intervals of around 10 seconds, 25 seconds, and 50 seconds. By\n"
      "contrast, it is not clear that the same pattern exists among\n"
      "Traders.' Expect (a)/(b) mass concentrated in a few sharp bins at\n"
      "fixed intervals; (c)/(d) spread across many bins.");
  return 0;
}
