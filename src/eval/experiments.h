// Experiment drivers reproducing the paper's evaluation (one per figure).
//
// Every driver consumes an EvalConfig describing the simulated campus and
// honeynet, runs the configured number of days, and returns plain result
// structs that the bench binaries render as text tables. See DESIGN.md §4
// for the figure-to-driver index.
#pragma once

#include <string>
#include <vector>

#include "detect/find_plotters.h"
#include "eval/day.h"
#include "eval/metrics.h"
#include "stats/roc.h"

namespace tradeplot::eval {

struct EvalConfig {
  trace::CampusConfig campus{};
  botnet::HoneynetConfig honeynet{};
  int days = 8;  // the paper's eight days of CMU traffic
};

/// Generates the fixed honeynet traces and all per-day overlays. The paper
/// evaluates each botnet in its own overlay run over the same campus days
/// ("We also perform tests with Nugache bots, where we show that for the
/// same false positive rate..."), so each day exists in a Storm-only and a
/// Nugache-only variant.
struct DaySet {
  netflow::TraceSet storm_trace;
  netflow::TraceSet nugache_trace;
  std::vector<DayData> storm_days;
  std::vector<DayData> nugache_days;
};
[[nodiscard]] DaySet make_days(const EvalConfig& config);

// ---------------------------------------------------------------- Figs 6-8

enum class SweepTest { kVolume, kChurn, kHumanMachine };

struct RocSweepResult {
  stats::RocCurve storm;
  stats::RocCurve nugache;
  std::vector<double> percentiles;  // the sweep grid actually used
};

/// ROC sweep for one test, thresholds at the 10/30/50/70/90-th percentiles,
/// averaged over the days (Figs. 6, 7, 8). For kHumanMachine the input set
/// is S_vol ∪ S_churn at the 50th percentile, as in the paper.
[[nodiscard]] RocSweepResult roc_sweep(const DaySet& days, SweepTest test,
                                       const detect::FindPlottersConfig& base = {});

// ------------------------------------------------------------------ Fig 9

struct FunnelStage {
  std::string name;
  StageRates rates;  // averaged over days, relative to the pipeline input
};

struct FunnelResult {
  std::vector<FunnelStage> stages;  // reduced, S_vol, S_churn, union, θ_hm
  /// Fig. 10: flow counts of Nugache carriers surviving each stage,
  /// accumulated over all days. Key order matches `stages`.
  std::vector<std::vector<double>> nugache_flow_counts;
};

[[nodiscard]] FunnelResult funnel(const DaySet& days,
                                  const detect::FindPlottersConfig& config = {});

// ----------------------------------------------------------------- Fig 11

struct EvasionThresholdDay {
  int day = 0;
  double tau_vol = 0.0;
  double storm_median_volume = 0.0;
  double nugache_median_volume = 0.0;
  double tau_churn = 0.0;
  double storm_median_churn = 0.0;
  double nugache_median_churn = 0.0;
};

/// Per-day detection thresholds vs. the median Plotter's feature values:
/// the multiplicative behaviour change needed to evade θ_vol / θ_churn.
[[nodiscard]] std::vector<EvasionThresholdDay> evasion_thresholds(
    const DaySet& days, const detect::FindPlottersConfig& config = {});

// ----------------------------------------------------------------- Fig 12

struct JitterPoint {
  double delay = 0.0;  // d, seconds
  double storm_tp = 0.0;
  double nugache_tp = 0.0;
};

/// Re-runs the full pipeline with bots adding ±d random delays before
/// connections to previously-contacted peers, for each d in `delays`.
[[nodiscard]] std::vector<JitterPoint> jitter_sweep(const EvalConfig& config,
                                                    const std::vector<double>& delays,
                                                    const detect::FindPlottersConfig& pipeline = {});

}  // namespace tradeplot::eval
