// Discrete-event simulation engine.
//
// A Simulation owns a time-ordered event queue. Simulated processes (host
// behaviour models, bots, ...) schedule callbacks at absolute times or after
// relative delays; run_until() drains events in timestamp order. Ties are
// broken by insertion order so runs are fully deterministic.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

namespace tradeplot::simnet {

/// Simulation time, in seconds since the start of the trace window.
using SimTime = double;

class Simulation {
 public:
  using Callback = std::function<void()>;

  Simulation() = default;
  Simulation(const Simulation&) = delete;
  Simulation& operator=(const Simulation&) = delete;

  /// Current simulated time.
  [[nodiscard]] SimTime now() const { return now_; }

  /// Schedules `fn` at absolute time `when`. Events scheduled in the past
  /// (before now()) fire immediately at the current time, preserving order.
  void schedule_at(SimTime when, Callback fn);

  /// Schedules `fn` after `delay` seconds (negative delays clamp to 0).
  void schedule_after(SimTime delay, Callback fn);

  /// Runs events until the queue empties or the next event is after `end`.
  /// Events at exactly `end` are executed. Returns the number of events run.
  std::size_t run_until(SimTime end);

  /// Runs everything currently queued (and anything those events enqueue).
  std::size_t run_all();

  [[nodiscard]] std::size_t pending() const { return queue_.size(); }

 private:
  struct Event {
    SimTime when;
    std::uint64_t seq;  // insertion order; tie-breaker for determinism
    Callback fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };

  SimTime now_ = 0.0;
  std::uint64_t next_seq_ = 0;
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
};

/// Convenience: reschedules itself with a caller-supplied period function
/// until `until` is reached. Used by periodic host behaviours (NTP beacons,
/// bot keep-alives, ...).
class PeriodicProcess {
 public:
  using Body = std::function<void(SimTime now)>;
  using NextDelay = std::function<double()>;

  /// Starts a process in `sim`: first fires at now+first_delay, then after
  /// next_delay() seconds each time, until sim.now() would exceed `until`.
  static void start(Simulation& sim, SimTime first_delay, SimTime until, NextDelay next_delay,
                    Body body);
};

}  // namespace tradeplot::simnet
