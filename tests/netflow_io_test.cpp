#include "netflow/io.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <sstream>

#include "util/error.h"
#include "util/rng.h"

namespace tradeplot::netflow {
namespace {

TraceSet sample_trace(int flows = 25, std::uint64_t seed = 1) {
  util::Pcg32 rng(seed);
  TraceSet trace(0.0, 21600.0);
  trace.set_truth(simnet::Ipv4(128, 2, 0, 1), HostKind::kWebClient);
  trace.set_truth(simnet::Ipv4(128, 2, 0, 2), HostKind::kStorm);
  for (int i = 0; i < flows; ++i) {
    FlowRecord r;
    r.src = simnet::Ipv4(128, 2, 0, static_cast<std::uint8_t>(1 + (i % 2)));
    r.dst = simnet::Ipv4(static_cast<std::uint32_t>(rng.uniform_int(1 << 26, 1 << 28)));
    r.sport = static_cast<std::uint16_t>(rng.uniform_int(1024, 65535));
    r.dport = static_cast<std::uint16_t>(rng.uniform_int(1, 1023));
    r.proto = rng.chance(0.5) ? Protocol::kTcp : Protocol::kUdp;
    r.start_time = rng.uniform(0, 21000);
    r.end_time = r.start_time + rng.uniform(0, 60);
    r.pkts_src = static_cast<std::uint64_t>(rng.uniform_int(1, 100));
    r.pkts_dst = static_cast<std::uint64_t>(rng.uniform_int(0, 100));
    r.bytes_src = static_cast<std::uint64_t>(rng.uniform_int(0, 100000));
    r.bytes_dst = static_cast<std::uint64_t>(rng.uniform_int(0, 1000000));
    r.state = r.pkts_dst == 0 ? FlowState::kAttempted : FlowState::kEstablished;
    if (rng.chance(0.5)) r.set_payload(std::string_view("\xe3\x01\x02binary\x00payload", 18));
    trace.add_flow(std::move(r));
  }
  return trace;
}

void expect_equal(const TraceSet& a, const TraceSet& b) {
  EXPECT_DOUBLE_EQ(a.window_start(), b.window_start());
  EXPECT_DOUBLE_EQ(a.window_end(), b.window_end());
  ASSERT_EQ(a.flows().size(), b.flows().size());
  for (std::size_t i = 0; i < a.flows().size(); ++i) {
    EXPECT_EQ(a.flows()[i], b.flows()[i]) << "flow " << i;
  }
  EXPECT_EQ(a.truth().size(), b.truth().size());
  for (const auto& [ip, kind] : a.truth()) EXPECT_EQ(b.kind_of(ip), kind);
}

TEST(CsvIo, RoundTrip) {
  const TraceSet trace = sample_trace();
  std::stringstream buffer;
  write_csv(buffer, trace);
  expect_equal(trace, read_csv(buffer));
}

TEST(CsvIo, EmptyTraceRoundTrips) {
  TraceSet trace(5.0, 10.0);
  std::stringstream buffer;
  write_csv(buffer, trace);
  const TraceSet back = read_csv(buffer);
  EXPECT_TRUE(back.flows().empty());
  EXPECT_DOUBLE_EQ(back.window_start(), 5.0);
}

TEST(CsvIo, RejectsMissingHeader) {
  std::stringstream buffer("1.2.3.4,5.6.7.8,1,2,tcp,0,1,1,1,1,1,est,\n");
  EXPECT_THROW((void)read_csv(buffer), util::ParseError);
}

TEST(CsvIo, RejectsBadFieldCount) {
  std::stringstream buffer;
  write_csv(buffer, sample_trace(1));
  std::string text = buffer.str();
  text += "only,three,fields\n";
  std::stringstream corrupted(text);
  EXPECT_THROW((void)read_csv(corrupted), util::ParseError);
}

TEST(CsvIo, RejectsOddPayloadHex) {
  std::stringstream buffer;
  buffer << "src,dst,sport,dport,proto,start,end,pkts_src,pkts_dst,bytes_src,bytes_dst,state,"
            "payload\n";
  buffer << "1.2.3.4,5.6.7.8,1,2,tcp,0,1,1,1,1,1,est,abc\n";
  EXPECT_THROW((void)read_csv(buffer), util::ParseError);
}

TEST(BinaryIo, RoundTrip) {
  const TraceSet trace = sample_trace(100, 7);
  std::stringstream buffer;
  write_binary(buffer, trace);
  expect_equal(trace, read_binary(buffer));
}

TEST(BinaryIo, RejectsBadMagic) {
  std::stringstream buffer("not a trace at all");
  EXPECT_THROW((void)read_binary(buffer), util::ParseError);
}

TEST(BinaryIo, RejectsTruncation) {
  const TraceSet trace = sample_trace(10);
  std::stringstream buffer;
  write_binary(buffer, trace);
  const std::string full = buffer.str();
  std::stringstream truncated(full.substr(0, full.size() / 2));
  EXPECT_THROW((void)read_binary(truncated), util::Error);
}

TEST(FileIo, RoundTripsThroughDisk) {
  const auto dir = std::filesystem::temp_directory_path();
  const std::string csv_path = (dir / "tp_test_trace.csv").string();
  const std::string bin_path = (dir / "tp_test_trace.bin").string();
  const TraceSet trace = sample_trace(40, 3);
  write_csv_file(csv_path, trace);
  write_binary_file(bin_path, trace);
  expect_equal(trace, read_csv_file(csv_path));
  expect_equal(trace, read_binary_file(bin_path));
  std::remove(csv_path.c_str());
  std::remove(bin_path.c_str());
}

TEST(FileIo, MissingFileThrows) {
  EXPECT_THROW((void)read_csv_file("/nonexistent/path/x.csv"), util::IoError);
  EXPECT_THROW((void)read_binary_file("/nonexistent/path/x.bin"), util::IoError);
}

}  // namespace
}  // namespace tradeplot::netflow
