// Baseline detectors from the paper's related-work discussion (§II), for
// head-to-head comparison with FindPlotters (bench/baseline_comparison):
//
//  * TdgTest         — traffic dispersion graphs (Iliofotou et al. [29]):
//                      P2P hosts are nodes with both incoming and outgoing
//                      edges and high degree in the communication graph.
//                      The paper discusses its evadability via Jelasity &
//                      Bilicki's proxy routing [28].
//  * EntropyTest     — human/machine discrimination by timing entropy
//                      (Gianvecchio et al. [6]): "network traffic from
//                      human activities shows a higher entropy than those
//                      from bots". Flags hosts whose interstitial-time
//                      entropy falls below a relative threshold.
//  * PersistenceTest — temporal persistence of destination atoms (Giroire
//                      et al. [35]): command-and-control shows up as
//                      destinations contacted in a large fraction of time
//                      slots. The paper notes it "requires whitelisting
//                      common sites" and targets centralized C&C.
//
// None of these is the paper's contribution; they are here so the paper's
// qualitative claims about them ("can be evaded by…", "not suitable for
// detecting Plotters that communicate over P2P") can be measured.
#pragma once

#include <cstdint>

#include "detect/features.h"
#include "detect/tests.h"
#include "netflow/trace_set.h"

namespace tradeplot::detect {

// ------------------------------------------------------------------- TDG

struct TdgConfig {
  /// Flag internal hosts with in- and out-edges and total degree >= this.
  std::size_t min_degree = 10;
  /// Only successful flows build edges (failed dials carry no dispersion).
  bool successful_only = false;
  std::function<bool(simnet::Ipv4)> is_internal;  // required
};

struct TdgResult {
  HostSet flagged;
  double average_degree = 0.0;  // over internal hosts
  double ino_ratio = 0.0;       // fraction of internal hosts with in+out edges
};

/// Builds the flow-level communication graph and flags P2P-looking hosts.
[[nodiscard]] TdgResult tdg_test(const netflow::TraceSet& trace, const TdgConfig& config);

// --------------------------------------------------------------- Entropy

struct EntropyTestConfig {
  /// Keep hosts whose timing entropy is below this percentile of the
  /// population (machine-driven = low entropy).
  double percentile = 0.3;
  /// Histogram bin width (seconds) used for the entropy estimate.
  double bin_width = 5.0;
  std::size_t min_samples = 40;
};

/// Shannon entropy (bits) of the host's interstitial-time histogram.
/// Returns a negative value if the host has fewer than min_samples samples.
[[nodiscard]] double timing_entropy(const HostFeatures& features,
                                    const EntropyTestConfig& config = {});

/// Flags low-entropy (machine-driven) hosts among `input`.
[[nodiscard]] HostSet entropy_test(const FeatureMap& features, const HostSet& input,
                                   const EntropyTestConfig& config = {});

// ----------------------------------------------------------- Persistence

struct PersistenceTestConfig {
  double slot_length = 600.0;  // time-slot granularity (seconds)
  /// A destination atom (a /24, as in Giroire et al.) is "persistent" for a
  /// host if it was contacted in at least this fraction of the slots
  /// between the host's first and last activity.
  double persistence_threshold = 0.6;
  /// Flag hosts with at least this many persistent atoms (past whatever
  /// whitelisting the operator can manage; 0 disables the test).
  std::size_t min_persistent_atoms = 1;
  /// Atoms contacted in fewer than this many slots never count (guards
  /// against trivially "persistent" one-slot hosts).
  std::size_t min_active_slots = 3;
  std::function<bool(simnet::Ipv4)> is_internal;  // required
};

struct PersistenceResult {
  HostSet flagged;
  /// Per flagged host: its most persistent atom's persistence value.
  std::unordered_map<simnet::Ipv4, double> max_persistence;
};

[[nodiscard]] PersistenceResult persistence_test(const netflow::TraceSet& trace,
                                                 const PersistenceTestConfig& config);

}  // namespace tradeplot::detect
