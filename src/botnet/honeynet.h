// Honeynet trace generation.
//
// The paper's Plotter datasets are 24-hour honeynet captures: 13 Storm bots
// and 82 Nugache bots, with attack traffic (spam, scanning) blocked so that
// control-plane traffic dominates. These functions reproduce that setup:
// bots run in an isolated simulation for `duration` seconds and their flows
// are recorded with honeynet-local source addresses, ready to be re-homed
// onto campus hosts by trace::Overlay exactly as §V does.
#pragma once

#include <cstdint>

#include "botnet/nugache.h"
#include "botnet/storm.h"
#include "netflow/trace_set.h"

namespace tradeplot::botnet {

struct HoneynetConfig {
  int storm_bots = 13;
  int nugache_bots = 82;
  double duration = 86400.0;  // 24 h
  /// Size of the simulated Overnet overlay Storm bots draw peers from.
  int overnet_size = 600;
  std::uint64_t seed = 1;
  StormConfig storm{};
  NugacheConfig nugache{};
};

/// 24-hour Storm trace: `storm_bots` bots, ground truth kStorm.
[[nodiscard]] netflow::TraceSet generate_storm_trace(const HoneynetConfig& config);

/// 24-hour Nugache trace: `nugache_bots` bots, ground truth kNugache.
[[nodiscard]] netflow::TraceSet generate_nugache_trace(const HoneynetConfig& config);

}  // namespace tradeplot::botnet
