file(REMOVE_RECURSE
  "CMakeFiles/p2p_kademlia_test.dir/p2p_kademlia_test.cpp.o"
  "CMakeFiles/p2p_kademlia_test.dir/p2p_kademlia_test.cpp.o.d"
  "p2p_kademlia_test"
  "p2p_kademlia_test.pdb"
  "p2p_kademlia_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/p2p_kademlia_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
