#!/usr/bin/env python3
"""CLI-level regression for the observability surface.

Drives the built binaries end to end:

  1. trace_tool generate  -> a small campus trace (CSV);
  2. corrupts one record, streams it through campus_monitor with the skip
     policy, and asserts the ingest-health report surfaces the first fault
     (IngestStats.first_error) with its record number and the active policy;
  3. validates the --metrics snapshot in both formats: Prometheus text via
     scripts/check_prometheus.py (with the families the issue requires on a
     scrape), JSON via json.load plus family presence;
  4. asserts verdict output is bit-identical with metrics on and off;
  5. trace_tool stats must print a valid Prometheus section and a parseable
     JSON section for its ingest metrics.

Run by ctest as ObsCliMetricsTest; paths to the binaries arrive as flags.
"""

import argparse
import json
import re
import subprocess
import sys
import tempfile
from pathlib import Path

REQUIRED_FAMILIES = [
    "tradeplot_ingest_records_total",
    "tradeplot_ingest_bytes_total",
    "tradeplot_ingest_record_seconds",
    "tradeplot_stream_flows_total",
    "tradeplot_stream_windows_total",
    "tradeplot_window_flows",
    "tradeplot_stage_duration_seconds",
    "tradeplot_checkpoint_bytes",
    "tradeplot_hm_signatures_total",
    "tradeplot_hm_distances_total",
]


def run(cmd, **kwargs):
    print("+", " ".join(str(c) for c in cmd), flush=True)
    return subprocess.run(
        [str(c) for c in cmd], capture_output=True, text=True, timeout=240, **kwargs
    )


def check(condition, message):
    if not condition:
        print(f"FAIL: {message}", file=sys.stderr)
        sys.exit(1)


def strip_volatile(stdout):
    """Window verdict lines only — drops the summary/ingest/timing tail."""
    return [
        line
        for line in stdout.splitlines()
        if line.startswith("===") or line.startswith("  128.")
    ]


def main():
    parser = argparse.ArgumentParser()
    parser.add_argument("--campus-monitor", required=True, type=Path)
    parser.add_argument("--trace-tool", required=True, type=Path)
    parser.add_argument("--check-prometheus", required=True, type=Path)
    args = parser.parse_args()

    with tempfile.TemporaryDirectory(prefix="tp_cli_metrics_") as tmp:
        tmp = Path(tmp)
        trace = tmp / "trace.csv"
        r = run([args.trace_tool, "generate", trace, "1", "1800"])
        check(r.returncode == 0, f"trace_tool generate failed: {r.stderr}")

        # Corrupt one flow record in the middle of the file (past the
        # preamble) so the skip policy has a fault to quarantine and report.
        lines = trace.read_text().splitlines(keepends=True)
        victim = len(lines) // 2
        lines[victim] = "this,is,not,a,flow,record\n"
        corrupt = tmp / "corrupt.csv"
        corrupt.write_text("".join(lines))

        # One whole-trace window: short windows empty the detection funnel
        # before θ_hm, and the scrape must cover the HmCache families.
        prom = tmp / "metrics.prom"
        base_cmd = [args.campus_monitor, "--stream", corrupt, "--policy", "skip"]
        with_metrics = run(base_cmd + ["--metrics", prom])
        check(with_metrics.returncode == 0, f"campus_monitor failed: {with_metrics.stderr}")

        # Satellite: the skip-policy report must surface IngestStats.first_error.
        out = with_metrics.stdout
        check("ingest health (policy skip):" in out, f"no ingest health line in:\n{out}")
        m = re.search(r"first fault \(record (\d+)\): (.+)", out)
        check(m is not None, f"first_error not surfaced in:\n{out}")
        check(int(m.group(1)) > 0, "first fault record number should be 1-based")
        check(len(m.group(2).strip()) > 0, "first fault detail is empty")
        check("1 quarantined" in out, f"expected exactly one quarantined record in:\n{out}")

        # Prometheus snapshot: structurally valid and covering the scrape
        # surface the issue requires.
        check(prom.exists(), "--metrics did not write the snapshot file")
        check(not (tmp / "metrics.prom.tmp").exists(), "temp snapshot file leaked")
        v = run(
            [sys.executable, args.check_prometheus, prom]
            + [f for fam in REQUIRED_FAMILIES for f in ("--require", fam)]
        )
        check(v.returncode == 0, f"invalid Prometheus exposition:\n{v.stderr}")

        # JSON snapshot: parseable, same families.
        jsn = tmp / "metrics.json"
        r = run(base_cmd + ["--metrics", jsn, "--metrics-format", "json"])
        check(r.returncode == 0, f"campus_monitor (json metrics) failed: {r.stderr}")
        doc = json.loads(jsn.read_text())
        names = {m["name"] for m in doc["metrics"]}

        def family(name):
            for suffix in ("_bucket", "_sum", "_count"):
                if name.endswith(suffix):
                    return name[: -len(suffix)]
            return name

        for fam in REQUIRED_FAMILIES:
            check(fam in names or any(family(n) == fam for n in names),
                  f"family {fam} missing from JSON snapshot")
        for metric in doc["metrics"]:
            if metric["type"] == "histogram":
                counts = [b["count"] for b in metric["buckets"]]
                check(counts == sorted(counts),
                      f"{metric['name']}: JSON buckets not cumulative")
                check(metric["buckets"][-1]["le"] == "+Inf",
                      f"{metric['name']}: missing +Inf bucket in JSON")
                check(metric["buckets"][-1]["count"] == metric["count"],
                      f"{metric['name']}: +Inf bucket != count in JSON")

        # Verdicts must be bit-identical with metrics collection off.
        without_metrics = run(base_cmd)
        check(without_metrics.returncode == 0,
              f"campus_monitor (no metrics) failed: {without_metrics.stderr}")
        check(strip_volatile(out) == strip_volatile(without_metrics.stdout),
              "verdict output differs between metrics on and off")

        # trace_tool stats: both ingest-metrics sections are well formed.
        r = run([args.trace_tool, "stats", trace])
        check(r.returncode == 0, f"trace_tool stats failed: {r.stderr}")
        prom_marker = "--- ingest metrics (prometheus) ---\n"
        json_marker = "--- ingest metrics (json) ---\n"
        check(prom_marker in r.stdout and json_marker in r.stdout,
              f"stats output lacks metrics sections:\n{r.stdout}")
        prom_text = r.stdout.split(prom_marker, 1)[1].split(json_marker, 1)[0]
        v = run(
            [sys.executable, args.check_prometheus, "-",
             "--require", "tradeplot_ingest_records_total",
             "--require", "tradeplot_ingest_bytes_total"],
            input=prom_text,
        )
        check(v.returncode == 0, f"trace_tool stats Prometheus section invalid:\n{v.stderr}")
        stats_doc = json.loads(r.stdout.split(json_marker, 1)[1])
        check(any(m["name"] == "tradeplot_ingest_records_total"
                  for m in stats_doc["metrics"]),
              "stats JSON section lacks ingest records counter")

    print("ObsCliMetricsTest: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
