#include "util/parallel.h"

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <exception>
#include <string>

#include "obs/metrics.h"
#include "util/error.h"
#include "util/interrupt.h"

namespace tradeplot::util {

namespace {

/// Pool metrics, registered together on the first enabled submit so a scrape
/// always shows the whole family set once the pool is instrumented.
struct PoolObs {
  obs::Counter& tasks = obs::Registry::global().counter(
      "tradeplot_pool_tasks_total", "Tasks executed by the shared thread pool");
  obs::Gauge& queue_depth = obs::Registry::global().gauge(
      "tradeplot_pool_queue_depth", "Tasks queued but not yet claimed by a worker");
  obs::Histogram& task_seconds = obs::Registry::global().histogram(
      "tradeplot_pool_task_seconds", "Wall-clock duration of one pool task",
      obs::duration_buckets());

  static PoolObs& get() {
    static PoolObs o;
    return o;
  }
};

}  // namespace

std::size_t resolve_threads(std::size_t requested) {
  if (requested > 0) return requested;
  if (const char* env = std::getenv("TRADEPLOT_THREADS")) {
    char* end = nullptr;
    const long parsed = std::strtol(env, &end, 10);
    if (end != env && *end == '\0' && parsed > 0) return static_cast<std::size_t>(parsed);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? hw : 1;
}

std::optional<std::size_t> threads_env_strict() {
  const char* env = std::getenv("TRADEPLOT_THREADS");
  if (env == nullptr) return std::nullopt;
  char* end = nullptr;
  const long parsed = std::strtol(env, &end, 10);
  if (end == env || *end != '\0' || parsed <= 0) {
    throw ConfigError("TRADEPLOT_THREADS must be a positive integer, got '" +
                      std::string(env) + "'");
  }
  return static_cast<std::size_t>(parsed);
}

ThreadPool::ThreadPool(std::size_t threads) {
  const std::size_t n = resolve_threads(threads);
  workers_.reserve(n);
  // Workers must not be eligible for SIGINT/SIGTERM/SIGHUP delivery: the
  // graceful-stop design needs those to EINTR the main thread's blocked
  // reads (util/interrupt.h). The scoped mask is inherited by the spawns.
  ScopedWorkerSignalMask mask;
  for (std::size_t t = 0; t < n; ++t) workers_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> task) {
  if (obs::enabled()) PoolObs::get().queue_depth.add(1.0);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    queue_.push_back(std::move(task));
  }
  cv_.notify_one();
}

ThreadPool& ThreadPool::shared() {
  static ThreadPool pool;
  return pool;
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ set and queue drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    if (obs::enabled()) {
      PoolObs& o = PoolObs::get();
      o.queue_depth.add(-1.0);
      const auto start = std::chrono::steady_clock::now();
      task();
      const auto elapsed = std::chrono::steady_clock::now() - start;
      o.task_seconds.observe(std::chrono::duration<double>(elapsed).count());
      o.tasks.add();
    } else {
      task();
    }
  }
}

void parallel_for(std::size_t begin, std::size_t end, std::size_t grain, std::size_t threads,
                  const std::function<void(std::size_t)>& fn) {
  if (end <= begin) return;
  if (grain == 0) grain = 1;
  const std::size_t chunks = (end - begin + grain - 1) / grain;
  const std::size_t workers = std::min(resolve_threads(threads), chunks);
  if (workers <= 1) {
    for (std::size_t i = begin; i < end; ++i) fn(i);
    return;
  }

  struct State {
    std::atomic<std::size_t> next_chunk{0};
    std::mutex mutex;
    std::condition_variable done;
    std::size_t helpers_finished = 0;
    std::exception_ptr error;
  } state;

  const auto work = [&state, &fn, begin, end, grain, chunks] {
    for (;;) {
      const std::size_t c = state.next_chunk.fetch_add(1, std::memory_order_relaxed);
      if (c >= chunks) return;
      const std::size_t lo = begin + c * grain;
      const std::size_t hi = std::min(end, lo + grain);
      try {
        for (std::size_t i = lo; i < hi; ++i) fn(i);
      } catch (...) {
        std::lock_guard<std::mutex> lock(state.mutex);
        if (!state.error) state.error = std::current_exception();
        state.next_chunk.store(chunks, std::memory_order_relaxed);  // abandon the rest
      }
    }
  };

  // helpers-1 tasks on the shared pool; the calling thread is worker zero,
  // so the loop drains even when the pool is saturated (or smaller than
  // `workers`, in which case extra tasks just queue behind each other).
  ThreadPool& pool = ThreadPool::shared();
  const std::size_t helpers = workers - 1;
  for (std::size_t t = 0; t < helpers; ++t) {
    pool.submit([&state, work] {
      work();
      std::lock_guard<std::mutex> lock(state.mutex);
      ++state.helpers_finished;
      state.done.notify_one();
    });
  }
  work();
  std::unique_lock<std::mutex> lock(state.mutex);
  state.done.wait(lock, [&state, helpers] { return state.helpers_finished == helpers; });
  if (state.error) std::rethrow_exception(state.error);
}

void parallel_for(std::size_t begin, std::size_t end, std::size_t grain,
                  const std::function<void(std::size_t)>& fn) {
  parallel_for(begin, end, grain, 0, fn);
}

}  // namespace tradeplot::util
