// Miscellaneous background hosts: scanners and near-idle machines.
//
// ScannerHost (a compromised box port-sweeping the Internet, or a research
// scanner) is the adversarial corner case for the pipeline: its failed-
// connection rate sails past data reduction and its tiny flows pass the
// volume test — only its extreme destination churn (every contact new) and
// its timing profile keep it out of the final Plotter set.
#pragma once

#include "netflow/app_env.h"
#include "netflow/flow_emit.h"
#include "util/rng.h"

namespace tradeplot::hosts {

struct ScannerConfig {
  double probes_per_hour = 700.0;
  double hit_prob = 0.03;       // almost everything times out
  std::uint16_t target_port = 445;
  double burst_prob = 0.3;      // sweep bursts rather than a pure Poisson
  int burst_len = 20;
};

class ScannerHost {
 public:
  ScannerHost(netflow::AppEnv env, simnet::Ipv4 self, util::Pcg32 rng, ScannerConfig config = {});
  void start();

 private:
  void probe_loop();
  void probe_once();

  netflow::AppEnv env_;
  util::Pcg32 rng_;
  netflow::FlowEmitter emit_;
  ScannerConfig config_;
};

struct IdleHostConfig {
  double flows_in_window_mean = 6.0;
};

/// A machine that is on but barely used: a few web/DNS flows all day.
class IdleHost {
 public:
  IdleHost(netflow::AppEnv env, simnet::Ipv4 self, util::Pcg32 rng, IdleHostConfig config = {});
  void start();

 private:
  netflow::AppEnv env_;
  util::Pcg32 rng_;
  netflow::FlowEmitter emit_;
  IdleHostConfig config_;
};

}  // namespace tradeplot::hosts
