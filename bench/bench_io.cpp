// Trace-ingestion throughput: legacy (iostream + stod) vs. current readers.
//
// Generates a synthetic trace (default 1,000,000 flows; argv[1] overrides),
// writes it as CSV and binary, then times four readers over the same files:
// the pre-rewrite CSV/binary readers (reproduced below verbatim as the
// baseline) and the current TraceReader-backed read_csv_file /
// read_binary_file. Every pass is verified to decode the identical TraceSet.
//
//   bench_io [flows] [--json <path>]
//
// --json writes a machine-readable report to <path>. TRADEPLOT_THREADS is
// parsed strictly (the readers are single-threaded, but a malformed value in
// the environment should fail any bench run, not be silently ignored): a bad
// value aborts with the pinned config error on stderr and exit code 2.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <functional>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "netflow/io.h"
#include "netflow/trace_reader.h"
#include "util/error.h"
#include "util/json.h"
#include "util/parallel.h"
#include "util/rng.h"

using namespace tradeplot;

namespace legacy {

// The seed repo's readers, kept as the measurement baseline. Do not modernize:
// the point of this file is to quantify what the rewrite bought.
using namespace tradeplot::netflow;

constexpr std::string_view kCsvHeader =
    "src,dst,sport,dport,proto,start,end,pkts_src,pkts_dst,bytes_src,bytes_dst,state,payload";

int hex_nibble(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  throw util::ParseError("bad hex digit");
}

std::vector<std::string> split(const std::string& line, char sep) {
  std::vector<std::string> out;
  std::size_t pos = 0;
  for (;;) {
    const std::size_t next = line.find(sep, pos);
    if (next == std::string::npos) {
      out.push_back(line.substr(pos));
      return out;
    }
    out.push_back(line.substr(pos, next - pos));
    pos = next + 1;
  }
}

HostKind host_kind_from_string(std::string_view s) {
  for (int i = 0; i <= static_cast<int>(HostKind::kNugache); ++i) {
    const auto kind = static_cast<HostKind>(i);
    if (to_string(kind) == s) return kind;
  }
  throw util::ParseError("unknown host kind '" + std::string(s) + "'");
}

TraceSet read_csv(std::istream& in) {
  TraceSet trace;
  std::string line;
  bool seen_header = false;
  std::size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    if (line.empty()) continue;
    if (line[0] == '#') {
      const auto parts = split(line, ',');
      if (parts[0] == "#window" && parts.size() == 3) {
        trace.set_window(std::stod(parts[1]), std::stod(parts[2]));
      } else if (parts[0] == "#truth" && parts.size() == 3) {
        trace.set_truth(simnet::Ipv4::parse(parts[1]), host_kind_from_string(parts[2]));
      } else {
        throw util::ParseError("bad comment line " + std::to_string(lineno));
      }
      continue;
    }
    if (!seen_header) {
      if (line != kCsvHeader) throw util::ParseError("missing CSV header");
      seen_header = true;
      continue;
    }
    const auto f = split(line, ',');
    if (f.size() != 13) throw util::ParseError("bad field count on line " + std::to_string(lineno));
    FlowRecord r;
    r.src = simnet::Ipv4::parse(f[0]);
    r.dst = simnet::Ipv4::parse(f[1]);
    r.sport = static_cast<std::uint16_t>(std::stoul(f[2]));
    r.dport = static_cast<std::uint16_t>(std::stoul(f[3]));
    r.proto = protocol_from_string(f[4]);
    r.start_time = std::stod(f[5]);
    r.end_time = std::stod(f[6]);
    r.pkts_src = std::stoull(f[7]);
    r.pkts_dst = std::stoull(f[8]);
    r.bytes_src = std::stoull(f[9]);
    r.bytes_dst = std::stoull(f[10]);
    r.state = flow_state_from_string(f[11]);
    const std::string& hex = f[12];
    if (hex.size() % 2 != 0 || hex.size() / 2 > kPayloadPrefixLen)
      throw util::ParseError("bad payload hex");
    r.payload_len = static_cast<std::uint8_t>(hex.size() / 2);
    for (std::size_t i = 0; i < r.payload_len; ++i) {
      r.payload[i] = static_cast<unsigned char>((hex_nibble(hex[2 * i]) << 4) |
                                                hex_nibble(hex[2 * i + 1]));
    }
    trace.add_flow(std::move(r));
  }
  if (!seen_header) throw util::ParseError("empty CSV trace");
  return trace;
}

constexpr std::uint32_t kBinMagic = 0x54504654;

template <typename T>
T get(std::istream& in) {
  T value{};
  in.read(reinterpret_cast<char*>(&value), sizeof(value));
  if (!in) throw util::IoError("binary trace: short read");
  return value;
}

TraceSet read_binary(std::istream& in) {
  if (get<std::uint32_t>(in) != kBinMagic) throw util::ParseError("binary trace: bad magic");
  if (get<std::uint32_t>(in) != 1) throw util::ParseError("binary trace: bad version");
  TraceSet trace;
  const double ws = get<double>(in);
  const double we = get<double>(in);
  trace.set_window(ws, we);
  const auto truth_count = get<std::uint64_t>(in);
  for (std::uint64_t i = 0; i < truth_count; ++i) {
    const auto ip = simnet::Ipv4(get<std::uint32_t>(in));
    trace.set_truth(ip, static_cast<HostKind>(get<std::uint8_t>(in)));
  }
  const auto flow_count = get<std::uint64_t>(in);
  for (std::uint64_t i = 0; i < flow_count; ++i) {
    FlowRecord r;
    r.src = simnet::Ipv4(get<std::uint32_t>(in));
    r.dst = simnet::Ipv4(get<std::uint32_t>(in));
    r.sport = get<std::uint16_t>(in);
    r.dport = get<std::uint16_t>(in);
    r.proto = static_cast<Protocol>(get<std::uint8_t>(in));
    r.start_time = get<double>(in);
    r.end_time = get<double>(in);
    r.pkts_src = get<std::uint64_t>(in);
    r.pkts_dst = get<std::uint64_t>(in);
    r.bytes_src = get<std::uint64_t>(in);
    r.bytes_dst = get<std::uint64_t>(in);
    r.state = static_cast<FlowState>(get<std::uint8_t>(in));
    r.payload_len = get<std::uint8_t>(in);
    in.read(reinterpret_cast<char*>(r.payload.data()), r.payload_len);
    if (!in) throw util::IoError("binary trace: short payload read");
    trace.add_flow(std::move(r));
  }
  return trace;
}

TraceSet read_csv_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return read_csv(in);
}

TraceSet read_binary_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return read_binary(in);
}

}  // namespace legacy

namespace {

netflow::TraceSet synthetic_trace(std::size_t flows, std::uint64_t seed) {
  util::Pcg32 rng(seed);
  netflow::TraceSet trace(0.0, 86400.0);
  for (int h = 0; h < 64; ++h)
    trace.set_truth(simnet::Ipv4(128, 2, 1, static_cast<std::uint8_t>(h)),
                    rng.chance(0.1) ? netflow::HostKind::kStorm : netflow::HostKind::kWebClient);
  trace.reserve_flows(flows);
  for (std::size_t i = 0; i < flows; ++i) {
    netflow::FlowRecord r;
    r.src = simnet::Ipv4(128, 2, static_cast<std::uint8_t>(rng.uniform_int(0, 255)),
                         static_cast<std::uint8_t>(rng.uniform_int(1, 254)));
    r.dst = simnet::Ipv4(static_cast<std::uint32_t>(rng.uniform_int(1 << 26, 1 << 30)));
    r.sport = static_cast<std::uint16_t>(rng.uniform_int(1024, 65535));
    r.dport = static_cast<std::uint16_t>(rng.uniform_int(1, 1023));
    r.proto = rng.chance(0.7) ? netflow::Protocol::kTcp : netflow::Protocol::kUdp;
    r.start_time = rng.uniform(0, 86400);
    r.end_time = r.start_time + rng.uniform(0, 120);
    r.pkts_src = static_cast<std::uint64_t>(rng.uniform_int(1, 1000));
    r.pkts_dst = static_cast<std::uint64_t>(rng.uniform_int(0, 1000));
    r.bytes_src = static_cast<std::uint64_t>(rng.uniform_int(0, 10'000'000));
    r.bytes_dst = static_cast<std::uint64_t>(rng.uniform_int(0, 10'000'000));
    r.state = r.pkts_dst == 0 ? netflow::FlowState::kAttempted : netflow::FlowState::kEstablished;
    if (rng.chance(0.3)) {
      unsigned char payload[netflow::kPayloadPrefixLen];
      const auto len = static_cast<std::size_t>(rng.uniform_int(1, 64));
      for (std::size_t b = 0; b < len; ++b)
        payload[b] = static_cast<unsigned char>(rng.uniform_int(0, 255));
      r.set_payload({reinterpret_cast<const char*>(payload), len});
    }
    trace.add_flow(std::move(r));
  }
  return trace;
}

bool traces_equal(const netflow::TraceSet& a, const netflow::TraceSet& b) {
  if (a.window_start() != b.window_start() || a.window_end() != b.window_end()) return false;
  if (a.flows() != b.flows()) return false;
  if (a.truth().size() != b.truth().size()) return false;
  for (const auto& [ip, kind] : a.truth())
    if (b.kind_of(ip) != kind) return false;
  return true;
}

struct Timed {
  netflow::TraceSet trace;
  double seconds = 0.0;
};

Timed time_reader(const std::function<netflow::TraceSet()>& fn) {
  const auto t0 = std::chrono::steady_clock::now();
  Timed out{fn(), 0.0};
  const auto t1 = std::chrono::steady_clock::now();
  out.seconds = std::chrono::duration<double>(t1 - t0).count();
  return out;
}

void report(const char* format, std::size_t flows, const Timed& before, const Timed& after) {
  const double mflows_before = static_cast<double>(flows) / before.seconds / 1e6;
  const double mflows_after = static_cast<double>(flows) / after.seconds / 1e6;
  std::printf("  %-6s  legacy %7.2f s (%6.2f Mflows/s)   current %7.2f s (%6.2f Mflows/s)   "
              "speedup %5.2fx\n",
              format, before.seconds, mflows_before, after.seconds, mflows_after,
              before.seconds / after.seconds);
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t flows = 1'000'000;
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json" && i + 1 < argc) {
      json_path = argv[++i];
    } else if (!arg.empty() && arg[0] != '-') {
      flows = static_cast<std::size_t>(std::strtoull(arg.c_str(), nullptr, 10));
    } else {
      std::fprintf(stderr, "usage: bench_io [flows] [--json <path>]\n");
      return 2;
    }
  }

  std::optional<std::size_t> env_threads;
  try {
    env_threads = util::threads_env_strict();
  } catch (const util::ConfigError& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return 2;
  }

  std::printf("==============================================================\n");
  std::printf("bench_io - trace ingestion throughput, %zu flows\n", flows);
  std::printf("==============================================================\n");

  const auto dir = std::filesystem::temp_directory_path();
  const std::string csv_path = (dir / "tp_bench_io.csv").string();
  const std::string bin_path = (dir / "tp_bench_io.bin").string();

  std::printf("  generating synthetic trace...\n");
  const netflow::TraceSet trace = synthetic_trace(flows, 20100621);
  netflow::write_csv_file(csv_path, trace);
  netflow::write_binary_file(bin_path, trace);
  std::printf("  csv %.1f MiB, bin %.1f MiB\n\n",
              static_cast<double>(std::filesystem::file_size(csv_path)) / (1 << 20),
              static_cast<double>(std::filesystem::file_size(bin_path)) / (1 << 20));

  const Timed csv_before = time_reader([&] { return legacy::read_csv_file(csv_path); });
  const Timed csv_after = time_reader([&] { return netflow::read_csv_file(csv_path); });
  report("csv", flows, csv_before, csv_after);

  const Timed bin_before = time_reader([&] { return legacy::read_binary_file(bin_path); });
  const Timed bin_after = time_reader([&] { return netflow::read_binary_file(bin_path); });
  report("binary", flows, bin_before, bin_after);

  const bool ok = traces_equal(trace, csv_before.trace) && traces_equal(trace, csv_after.trace) &&
                  traces_equal(trace, bin_before.trace) && traces_equal(trace, bin_after.trace);
  std::printf("\n  all four decoded traces identical to the generated one: %s\n",
              ok ? "PASS" : "FAIL");

  if (!json_path.empty()) {
    std::ofstream out(json_path);
    if (!out) {
      std::fprintf(stderr, "bench_io: cannot write JSON to %s\n", json_path.c_str());
      return 1;
    }
    const auto mflows = [flows](const Timed& t) {
      return static_cast<double>(flows) / t.seconds / 1e6;
    };
    util::JsonWriter w(out);
    w.begin_object();
    w.kv("bench", "bench_io");
    w.kv("flows", static_cast<std::uint64_t>(flows));
    w.key("tradeplot_threads");
    if (env_threads) {
      w.value(static_cast<std::uint64_t>(*env_threads));
    } else {
      w.null();
    }
    w.key("formats");
    w.begin_array();
    const auto format_entry = [&](const char* format, const Timed& before,
                                  const Timed& after) {
      w.begin_object();
      w.kv("format", format);
      w.key("legacy_s");
      w.number(before.seconds, "%.3f");
      w.key("current_s");
      w.number(after.seconds, "%.3f");
      w.key("legacy_mflows_per_s");
      w.number(mflows(before), "%.3f");
      w.key("current_mflows_per_s");
      w.number(mflows(after), "%.3f");
      w.key("speedup_vs_legacy");
      w.number(before.seconds / after.seconds, "%.3f");
      w.end_object();
    };
    format_entry("csv", csv_before, csv_after);
    format_entry("binary", bin_before, bin_after);
    w.end_array();
    w.kv("decoded_traces_identical", ok);
    w.end_object();
    out << "\n";
    if (!out.flush()) {
      std::fprintf(stderr, "bench_io: cannot write JSON to %s\n", json_path.c_str());
      return 1;
    }
    std::printf("  JSON report written to %s\n", json_path.c_str());
  }

  std::filesystem::remove(csv_path);
  std::filesystem::remove(bin_path);
  return ok ? 0 : 1;
}
