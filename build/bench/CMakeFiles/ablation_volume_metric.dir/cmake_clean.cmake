file(REMOVE_RECURSE
  "CMakeFiles/ablation_volume_metric.dir/ablation_volume_metric.cpp.o"
  "CMakeFiles/ablation_volume_metric.dir/ablation_volume_metric.cpp.o.d"
  "ablation_volume_metric"
  "ablation_volume_metric.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_volume_metric.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
