#include "p2p/kademlia.h"

#include <algorithm>
#include <set>

#include "util/error.h"

namespace tradeplot::p2p {

bool KBucket::upsert(const Contact& c) {
  const auto it = std::find_if(contacts_.begin(), contacts_.end(),
                               [&](const Contact& e) { return e.id == c.id; });
  if (it != contacts_.end()) {
    // Refresh: move to the back (most recently seen).
    Contact copy = *it;
    contacts_.erase(it);
    contacts_.push_back(copy);
    return true;
  }
  if (contacts_.size() >= capacity_) return false;
  contacts_.push_back(c);
  return true;
}

bool KBucket::remove(NodeId id) {
  const auto it = std::find_if(contacts_.begin(), contacts_.end(),
                               [&](const Contact& e) { return e.id == id; });
  if (it == contacts_.end()) return false;
  contacts_.erase(it);
  return true;
}

RoutingTable::RoutingTable(NodeId self, std::size_t k) : self_(self), k_(k) {
  if (k == 0) throw util::ConfigError("RoutingTable: k must be >= 1");
  buckets_.assign(NodeId::kBits, KBucket(k_));
}

bool RoutingTable::insert(const Contact& c) {
  if (c.id == self_) return false;
  const int bucket = self_.distance_to(c.id).highest_bit();
  return buckets_[static_cast<std::size_t>(bucket)].upsert(c);
}

bool RoutingTable::remove(NodeId id) {
  if (id == self_) return false;
  const int bucket = self_.distance_to(id).highest_bit();
  return buckets_[static_cast<std::size_t>(bucket)].remove(id);
}

std::size_t RoutingTable::size() const {
  std::size_t n = 0;
  for (const KBucket& b : buckets_) n += b.contacts().size();
  return n;
}

std::vector<Contact> RoutingTable::closest(NodeId target, std::size_t count) const {
  std::vector<Contact> all;
  all.reserve(size());
  for (const KBucket& b : buckets_)
    all.insert(all.end(), b.contacts().begin(), b.contacts().end());
  std::sort(all.begin(), all.end(), [&](const Contact& a, const Contact& b2) {
    return a.id.distance_to(target) < b2.id.distance_to(target);
  });
  if (all.size() > count) all.resize(count);
  return all;
}

void Overlay::add_node(const Contact& c) {
  if (nodes_.contains(c.id)) throw util::ConfigError("Overlay: duplicate node id");
  nodes_.emplace(c.id, Node{c, true});
  ids_.push_back(c.id);
}

void Overlay::set_online(NodeId id, bool online) {
  const auto it = nodes_.find(id);
  if (it != nodes_.end()) it->second.online = online;
}

bool Overlay::is_online(NodeId id) const {
  const auto it = nodes_.find(id);
  return it != nodes_.end() && it->second.online;
}

std::optional<Contact> Overlay::find(NodeId id) const {
  const auto it = nodes_.find(id);
  if (it == nodes_.end()) return std::nullopt;
  return it->second.contact;
}

std::optional<Contact> Overlay::random_node(util::Pcg32& rng) const {
  if (ids_.empty()) return std::nullopt;
  const NodeId id = rng.pick(ids_);
  return nodes_.at(id).contact;
}

std::vector<Contact> Overlay::closest(NodeId target, std::size_t count) const {
  // Linear scan with a bounded selection; overlay sizes in the simulations
  // are O(10^3-10^4) so this is cheap and keeps the structure simple. A
  // production DHT would of course not have a global view at all.
  std::vector<const Node*> all;
  all.reserve(nodes_.size());
  for (const auto& [id, node] : nodes_) all.push_back(&node);
  const auto cmp = [&](const Node* a, const Node* b) {
    return a->contact.id.distance_to(target) < b->contact.id.distance_to(target);
  };
  if (all.size() > count) {
    std::partial_sort(all.begin(), all.begin() + static_cast<std::ptrdiff_t>(count), all.end(),
                      cmp);
    all.resize(count);
  } else {
    std::sort(all.begin(), all.end(), cmp);
  }
  std::vector<Contact> out;
  out.reserve(all.size());
  for (const Node* n : all) out.push_back(n->contact);
  return out;
}

LookupResult iterative_find_node(const Overlay& overlay, RoutingTable& table, NodeId target,
                                 const LookupParams& params, util::Pcg32& rng) {
  (void)rng;
  LookupResult result;
  const auto closer = [&](const Contact& a, const Contact& b) {
    return a.id.distance_to(target) < b.id.distance_to(target);
  };

  // Candidate shortlist ordered by distance to target.
  std::vector<Contact> shortlist = table.closest(target, params.k);
  std::set<NodeId> queried;
  std::vector<Contact> live;

  for (std::size_t round = 0; round < params.max_rounds; ++round) {
    // Pick up to alpha closest unqueried candidates.
    std::sort(shortlist.begin(), shortlist.end(), closer);
    std::vector<Contact> batch;
    for (const Contact& c : shortlist) {
      if (batch.size() >= params.alpha) break;
      if (!queried.contains(c.id)) batch.push_back(c);
    }
    if (batch.empty()) break;

    bool learned_closer = false;
    for (const Contact& peer : batch) {
      queried.insert(peer.id);
      const bool online = overlay.is_online(peer.id);
      result.probes.push_back(Probe{peer, online});
      if (!online) {
        table.remove(peer.id);
        continue;
      }
      table.insert(peer);
      live.push_back(peer);
      // The responder reports its k closest registered neighbours.
      for (const Contact& learned : overlay.closest(target, params.k)) {
        if (learned.id == table.self()) continue;
        const bool known = std::any_of(shortlist.begin(), shortlist.end(),
                                       [&](const Contact& c) { return c.id == learned.id; });
        if (!known) {
          if (shortlist.empty() || closer(learned, shortlist.front())) learned_closer = true;
          shortlist.push_back(learned);
          learned_closer = true;
        }
      }
    }
    if (!learned_closer && !live.empty()) {
      result.converged = true;
      break;
    }
  }

  std::sort(live.begin(), live.end(), closer);
  live.erase(std::unique(live.begin(), live.end()), live.end());
  if (live.size() > params.k) live.resize(params.k);
  result.closest = std::move(live);
  if (!result.converged) result.converged = !result.closest.empty();
  return result;
}

}  // namespace tradeplot::p2p
