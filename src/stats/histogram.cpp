#include "stats/histogram.h"

#include <algorithm>
#include <cmath>
#include <cstdint>

#include "stats/descriptive.h"
#include "util/error.h"

namespace tradeplot::stats {

double freedman_diaconis_width(std::span<const double> samples) {
  if (samples.empty()) throw util::ConfigError("FD width of empty sample");
  const double n = static_cast<double>(samples.size());
  const double spread = iqr(samples);
  if (spread > 0.0) return 2.0 * spread * std::pow(n, -1.0 / 3.0);
  const auto [mn, mx] = std::minmax_element(samples.begin(), samples.end());
  const double range = *mx - *mn;
  if (range > 0.0) return range / std::sqrt(n);
  return 1.0;  // all samples identical: any width yields one point mass
}

Histogram::Histogram(std::span<const double> samples, double bin_width) {
  if (samples.empty()) throw util::ConfigError("histogram of empty sample");
  if (!(bin_width > 0.0)) throw util::ConfigError("histogram bin width must be > 0");
  const auto [mn, mx] = std::minmax_element(samples.begin(), samples.end());
  origin_ = *mn;
  bin_width_ = bin_width;
  const double span_width = *mx - *mn;
  auto bins = static_cast<std::size_t>(std::floor(span_width / bin_width_)) + 1;
  // Guard against pathological tiny widths blowing up memory.
  constexpr std::size_t kMaxBins = 1u << 20;
  if (bins > kMaxBins) {
    bin_width_ = span_width / static_cast<double>(kMaxBins - 1);
    bins = kMaxBins;
  }
  counts_.assign(bins, 0);
  for (const double x : samples) {
    auto idx = static_cast<std::size_t>((x - origin_) / bin_width_);
    if (idx >= counts_.size()) idx = counts_.size() - 1;  // x == max edge case
    counts_[idx] += 1;
  }
  total_ = samples.size();
}

Histogram Histogram::with_fd_width(std::span<const double> samples) {
  return Histogram(samples, freedman_diaconis_width(samples));
}

std::vector<double> Histogram::pmf() const {
  std::vector<double> out(counts_.size());
  const double n = static_cast<double>(total_);
  for (std::size_t i = 0; i < counts_.size(); ++i)
    out[i] = static_cast<double>(counts_[i]) / n;
  return out;
}

Signature Histogram::signature() const {
  Signature out;
  const double n = static_cast<double>(total_);
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    if (counts_[i] == 0) continue;
    out.push_back({bin_center(i), static_cast<double>(counts_[i]) / n});
  }
  return out;
}

Signature Histogram::index_signature() const {
  Signature out;
  const double n = static_cast<double>(total_);
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    if (counts_[i] == 0) continue;
    out.push_back({static_cast<double>(i), static_cast<double>(counts_[i]) / n});
  }
  return out;
}

}  // namespace tradeplot::stats
