#include "stats/flat_signature.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>
#include <vector>

#include "stats/emd.h"
#include "util/error.h"
#include "util/rng.h"

namespace tradeplot::stats {
namespace {

Signature sig(std::initializer_list<SignaturePoint> points) { return Signature(points); }

bool same_bits(double x, double y) { return std::memcmp(&x, &y, sizeof x) == 0; }

bool same_bits(const std::vector<double>& a, const std::vector<double>& b) {
  return a.size() == b.size() &&
         std::memcmp(a.data(), b.data(), a.size() * sizeof(double)) == 0;
}

// Random signature exercising the sweep's awkward shapes: duplicate
// positions (both within a signature and, via the shared grid below, across
// the pair), tied weights, and 1-3 element edge sizes.
Signature random_sig(util::Pcg32& rng) {
  const auto n = static_cast<std::size_t>(rng.uniform_int(1, 40));
  Signature s;
  s.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    double pos;
    if (rng.chance(0.3) && !s.empty()) {
      pos = s[static_cast<std::size_t>(rng.uniform_int(
                  0, static_cast<std::int64_t>(s.size()) - 1))]
                .position;  // duplicate within the signature
    } else if (rng.chance(0.3)) {
      pos = static_cast<double>(rng.uniform_int(0, 9));  // shared coarse grid
    } else {
      pos = rng.uniform(-5.0, 25.0);
    }
    const double w = rng.chance(0.25) ? 1.0 : rng.uniform(0.0, 2.0);
    s.push_back({pos, w});
  }
  // Guarantee positive mass even if every uniform weight drew ~0.
  s[0].weight += 0.125;
  return s;
}

// The reference pairwise matrix: the pre-flat formulation, emd_1d per cell.
std::vector<double> reference_pairwise(const std::vector<Signature>& sigs) {
  const std::size_t n = sigs.size();
  std::vector<double> d(n * n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      const double v = emd_1d(sigs[i], sigs[j]);
      d[i * n + j] = v;
      d[j * n + i] = v;
    }
  }
  return d;
}

TEST(FlatSignatureSet, ViewsAreNormalizedSortedAndSentinelPadded) {
  const std::vector<Signature> sigs = {sig({{3.0, 2.0}, {1.0, 6.0}}),
                                       sig({{5.0, 4.0}})};
  const FlatSignatureSet flat(sigs);
  ASSERT_EQ(flat.size(), 2u);
  EXPECT_EQ(flat.total_points(), 3u);

  const FlatSignatureView a = flat.view(0);
  ASSERT_EQ(a.size, 2u);
  EXPECT_EQ(a.positions[0], 1.0);
  EXPECT_EQ(a.positions[1], 3.0);
  EXPECT_DOUBLE_EQ(a.weights[0], 0.75);
  EXPECT_DOUBLE_EQ(a.weights[1], 0.25);
  // One-past-end sentinel backs the branch-free sweep.
  EXPECT_TRUE(std::isinf(a.positions[2]));
  EXPECT_EQ(a.weights[2], 0.0);

  const FlatSignatureView b = flat.view(1);
  ASSERT_EQ(b.size, 1u);
  EXPECT_EQ(b.positions[0], 5.0);
  EXPECT_DOUBLE_EQ(b.weights[0], 1.0);
}

TEST(FlatSignatureSet, PresortedKernelMatchesReferenceBitwiseOnRandomPairs) {
  util::Pcg32 rng(0xF1A7);
  for (int iter = 0; iter < 400; ++iter) {
    const Signature a = random_sig(rng);
    const Signature b = random_sig(rng);
    const FlatSignatureSet flat({a, b});
    const double reference = emd_1d(a, b);
    const double flat_value = emd_1d_presorted(flat.view(0), flat.view(1));
    ASSERT_TRUE(same_bits(reference, flat_value))
        << "iter " << iter << ": reference " << reference << " vs flat " << flat_value;
  }
}

TEST(FlatSignatureSet, PresortedKernelMatchesReferenceOnTinyEdgeCases) {
  // Every 1-3 element shape, including exact position ties across the pair
  // and tied weights, must match emd_1d bit for bit.
  const std::vector<Signature> cases = {
      sig({{2.0, 1.0}}),
      sig({{2.0, 0.5}}),
      sig({{-1.0, 1.0}}),
      sig({{2.0, 1.0}, {2.0, 1.0}}),
      sig({{0.0, 0.25}, {2.0, 0.75}}),
      sig({{2.0, 0.75}, {0.0, 0.25}}),
      sig({{0.0, 1.0}, {1.0, 1.0}, {2.0, 1.0}}),
      sig({{1.0, 0.1}, {1.0, 0.1}, {1.0, 0.8}}),
  };
  for (const Signature& a : cases) {
    for (const Signature& b : cases) {
      const FlatSignatureSet flat({a, b});
      ASSERT_TRUE(same_bits(emd_1d(a, b), emd_1d_presorted(flat.view(0), flat.view(1))));
    }
  }
}

TEST(FlatSignatureSet, PairwiseEmdBitIdenticalAcrossThreadCounts) {
  // 65 hosts straddles the 64-wide tile boundary, so both full and partial
  // tiles are exercised.
  util::Pcg32 rng(0xBEEF);
  std::vector<Signature> sigs;
  for (int i = 0; i < 65; ++i) sigs.push_back(random_sig(rng));
  const std::vector<double> reference = reference_pairwise(sigs);
  for (const std::size_t threads : {1u, 2u, 8u}) {
    const std::vector<double> flat = pairwise_emd(sigs, threads);
    ASSERT_TRUE(same_bits(reference, flat)) << "threads=" << threads;
  }
}

TEST(FlatSignatureSet, ValidatesBeforeAnyWorkerRuns) {
  const Signature good = sig({{1.0, 1.0}});
  const auto message = [](const auto& fn) -> std::string {
    try {
      fn();
    } catch (const util::ConfigError& e) {
      return e.what();
    }
    return "(no throw)";
  };

  const std::vector<Signature> negative = {good, sig({{1.0, -0.5}})};
  EXPECT_EQ(message([&] { FlatSignatureSet f(negative, 8); }),
            "config error: EMD: negative signature weight");
  EXPECT_EQ(message([&] { (void)pairwise_emd(negative, 8); }),
            "config error: EMD: negative signature weight");

  const std::vector<Signature> empty_mass = {good, sig({{1.0, 0.0}})};
  EXPECT_EQ(message([&] { FlatSignatureSet f(empty_mass, 8); }),
            "config error: EMD: signature has no mass");
  EXPECT_EQ(message([&] { (void)pairwise_emd(empty_mass, 8); }),
            "config error: EMD: signature has no mass");

  const std::vector<Signature> non_finite = {
      good, sig({{std::numeric_limits<double>::infinity(), 1.0}})};
  EXPECT_EQ(message([&] { FlatSignatureSet f(non_finite, 8); }),
            "config error: EMD: non-finite signature position");
  EXPECT_EQ(message([&] { (void)pairwise_emd(non_finite, 8); }),
            "config error: EMD: non-finite signature position");
}

TEST(FlatSignatureSet, PackingIsThreadCountInvariant) {
  util::Pcg32 rng(0x5EED);
  std::vector<Signature> sigs;
  for (int i = 0; i < 24; ++i) sigs.push_back(random_sig(rng));
  const FlatSignatureSet serial(sigs, 1);
  const FlatSignatureSet parallel(sigs, 8);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    const FlatSignatureView a = serial.view(i);
    const FlatSignatureView b = parallel.view(i);
    ASSERT_EQ(a.size, b.size);
    EXPECT_EQ(std::memcmp(a.positions, b.positions, a.size * sizeof(double)), 0);
    EXPECT_EQ(std::memcmp(a.weights, b.weights, a.size * sizeof(double)), 0);
  }
}

}  // namespace
}  // namespace tradeplot::stats
