// Campus monitor: the operational scenario from the paper's introduction.
//
// A network administrator collects border flow records day after day and
// wants a morning report: which internal hosts look like P2P bots? This
// example simulates a working week, runs FindPlotters on each day, and
// prints the report an operator would read — flagged hosts, their feature
// profile, and (since this is a simulation) whether the alarm was right.
//
// Usage: campus_monitor [days] [seed]
//        campus_monitor --stream <trace.(csv|bin)> [window_s] [options]
//
// The --stream mode is the production ingestion path: it pulls flows from
// the trace file through netflow::TraceReader into detect::StreamingDetector,
// so memory stays bounded by one detection window no matter how large the
// trace is, and prints the same per-window report. It is also the
// fault-tolerant path:
//   --policy strict|skip|stop-after=N   what to do with malformed records
//                                       (default strict; skip quarantines
//                                       and keeps going)
//   --checkpoint PATH                   periodically checkpoint detector
//   --checkpoint-every N                state every N flows (default 100000)
//   --resume PATH                       restore a checkpoint, fast-forward
//                                       the trace, and continue
//   --timing-budget N                   per-window cap on buffered timing
//                                       samples; beyond it the lowest-
//                                       evidence state is shed and the
//                                       window is marked degraded
//   --metrics PATH[,interval_s]         enable the obs metrics registry and
//                                       write a snapshot to PATH at exit
//                                       ("-" = stdout); with an interval,
//                                       also rewrite it periodically so a
//                                       textfile scraper sees live values
//   --metrics-format prom|json          snapshot format (default prom)
//   --shards N                          run the sharded detector with N
//                                       worker shards (default 1; 1 is
//                                       bit-identical to the single
//                                       detector, N>1 merges per-shard
//                                       sketches and two-level clustering)
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <string_view>

#include "botnet/honeynet.h"
#include "detect/find_plotters.h"
#include "detect/streaming.h"
#include "eval/day.h"
#include "netflow/trace_reader.h"
#include "obs/exposition.h"
#include "obs/metrics.h"
#include "obs/profiler.h"
#include "shard/sharded_detector.h"
#include "svc/sender.h"
#include "util/error.h"
#include "util/format.h"
#include "util/interrupt.h"
#include "util/parallel.h"

using namespace tradeplot;

namespace {

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [days] [seed]\n"
               "       %s --stream <trace.(csv|bin)> [window_s]\n"
               "                 [--policy strict|skip|stop-after=N]\n"
               "                 [--checkpoint PATH] [--checkpoint-every N]\n"
               "                 [--resume PATH] [--timing-budget N]\n"
               "                 [--metrics PATH[,interval_s]] [--metrics-format prom|json]\n"
               "                 [--shards N]\n"
               "       %s --send <trace.(csv|bin)> --endpoint EP --tenant NAME\n"
               "days and window_s must be positive numbers; seed and N must be\n"
               "non-negative integers. --send streams the trace to a running\n"
               "campus_monitord (EP like tcp:127.0.0.1:7171 or unix:/path.sock).\n",
               argv0, argv0, argv0);
  return 2;
}

// std::atof/std::atoi silently turn garbage into 0; these helpers accept a
// value only when the whole argument parses.
bool parse_double_arg(const char* s, double& out) {
  if (s == nullptr || *s == '\0') return false;
  char* end = nullptr;
  out = std::strtod(s, &end);
  return *end == '\0';
}

bool parse_u64_arg(const char* s, std::uint64_t& out) {
  if (s == nullptr || *s == '\0') return false;
  for (const char* p = s; *p != '\0'; ++p) {
    if (*p < '0' || *p > '9') return false;
  }
  char* end = nullptr;
  out = std::strtoull(s, &end, 10);
  return *end == '\0';
}

struct StreamOptions {
  std::string path;
  double window = 6 * 3600.0;
  netflow::ErrorPolicy policy{};
  std::string checkpoint_path;
  std::uint64_t checkpoint_every = 100000;
  std::string resume_path;
  std::uint64_t timing_budget = 0;
  std::string metrics_path;  // empty = metrics disabled
  double metrics_interval = 0.0;  // seconds between periodic dumps (0 = exit only)
  obs::ExpositionFormat metrics_format = obs::ExpositionFormat::kPrometheus;
  std::uint64_t shards = 0;  // 0 = flag absent, legacy StreamingDetector path
};

std::string_view policy_name(const netflow::ErrorPolicy& policy) {
  switch (policy.action) {
    case netflow::OnError::kStrict: return "strict";
    case netflow::OnError::kSkip: return "skip";
    case netflow::OnError::kStopAfter: return "stop-after";
  }
  return "unknown";
}

std::string verdict(const eval::DayData& day, simnet::Ipv4 host) {
  if (day.is_storm(host)) return "TRUE POSITIVE (Storm)";
  if (day.is_nugache(host)) return "TRUE POSITIVE (Nugache)";
  if (day.is_trader(host)) return "false alarm (file-sharing host)";
  return "false alarm (" + std::string(netflow::to_string(day.combined.kind_of(host))) + ")";
}

// Feeds the trace through either detector type. StreamingDetector and
// ShardedDetector expose the same ingest/checkpoint/flush surface, so the
// whole fault-tolerant driver — resume fast-forward, record-granular
// checkpoint boundaries, SIGINT handling, the summary — is written once.
template <class Detector, class DumpFn>
int drive_stream(const StreamOptions& opt, netflow::TraceReader& reader, Detector& detector,
                 const DumpFn& dump_metrics, int& flagged_total, int& tp_total,
                 int& degraded_windows) {
  if (!opt.resume_path.empty()) {
    detector.restore_checkpoint_file(opt.resume_path);
    const auto already = detector.flows_ingested_total();
    const std::size_t skipped = reader.skip_flows(static_cast<std::size_t>(already));
    std::printf("resumed from %s: %llu flows already ingested, fast-forwarded %zu\n\n",
                opt.resume_path.c_str(), static_cast<unsigned long long>(already), skipped);
  }

  // Ingest columnar batches (rather than detect::feed) so we can checkpoint
  // periodically and, on a mid-trace failure, still flush the partial
  // window instead of discarding everything ingested since the last
  // boundary. Batches are split at checkpoint boundaries with the range-
  // ingest overload, so a checkpoint still lands after exactly every
  // checkpoint_every-th flow — record-granular, batch size notwithstanding
  // — and --resume fast-forwards to the identical position.
  std::size_t fed = 0;
  bool failed = false;
  bool interrupted = false;
  std::string error;
  auto next_dump = std::chrono::steady_clock::now() +
                   std::chrono::duration<double>(opt.metrics_interval);
  const bool checkpointing = !opt.checkpoint_path.empty() && opt.checkpoint_every > 0;
  try {
    netflow::FlowBatch batch;
    for (;;) {
      // Graceful SIGINT/SIGTERM: stop pulling at a batch boundary, write a
      // final checkpoint, flush the partial window, exit 0. A blocked read
      // (e.g. a FIFO source) is interrupted too: the signal handlers omit
      // SA_RESTART and util::read_retry turns the interruption into a clean
      // short read at a record boundary.
      if (util::shutdown_requested()) {
        interrupted = true;
        break;
      }
      std::size_t n = 0;
      try {
        n = reader.next_batch(batch);
      } catch (...) {
        // A decode fault may leave rows already staged in the batch; the
        // reader counted them, so ingest them before reporting the error —
        // otherwise a --resume past records_ok would skip flows the
        // detector never saw.
        if (!batch.empty()) {
          detector.ingest(batch);
          fed += batch.size();
        }
        throw;
      }
      if (n == 0) break;
      std::size_t begin = 0;
      while (begin < n) {
        std::size_t take = n - begin;
        if (checkpointing) {
          const std::uint64_t until_boundary =
              opt.checkpoint_every - detector.flows_ingested_total() % opt.checkpoint_every;
          if (static_cast<std::uint64_t>(take) > until_boundary)
            take = static_cast<std::size_t>(until_boundary);
        }
        detector.ingest(batch, begin, begin + take);
        begin += take;
        fed += take;
        if (checkpointing && detector.flows_ingested_total() % opt.checkpoint_every == 0) {
          detector.save_checkpoint_file(opt.checkpoint_path);
        }
      }
      // Clock checks are amortized over a batch of flows; a periodic scrape
      // does not need per-flow precision.
      if (opt.metrics_interval > 0.0 &&
          std::chrono::steady_clock::now() >= next_dump) {
        dump_metrics();
        next_dump = std::chrono::steady_clock::now() +
                    std::chrono::duration<double>(opt.metrics_interval);
      }
    }
  } catch (const std::exception& e) {
    failed = true;
    error = e.what();
  }
  if (interrupted) {
    // Checkpoint BEFORE flushing: the checkpoint must describe the still-
    // open window so --resume continues it; the verdicts printed below are
    // this run's partial view. The marker line lets a comparing harness
    // separate complete windows (above) from the partial tail (below).
    if (checkpointing) detector.save_checkpoint_file(opt.checkpoint_path);
    std::printf("=== interrupted: final checkpoint %s; flushing partial window ===\n",
                checkpointing ? opt.checkpoint_path.c_str() : "skipped (no --checkpoint)");
  }
  try {
    detector.flush();
  } catch (const std::exception& e) {
    if (!failed) throw;
    std::fprintf(stderr, "while flushing partial window: %s\n", e.what());
  }

  const netflow::IngestStats& stats = reader.ingest_stats();
  std::printf("=== summary: %zu flows across %zu windows, %d flagged (%d true positives) ===\n",
              fed, detector.windows_emitted(), flagged_total, tp_total);
  if (degraded_windows > 0)
    std::printf("  %d window(s) emitted degraded verdicts (timing budget %llu)\n",
                degraded_windows, static_cast<unsigned long long>(opt.timing_budget));
  if (stats.records_quarantined > 0 || stats.lost_sync) {
    std::printf("  ingest health (policy %s): %zu ok, %zu quarantined across %zu resync event(s)%s\n",
                std::string(policy_name(opt.policy)).c_str(), stats.records_ok,
                stats.records_quarantined, stats.resync_events,
                stats.lost_sync ? ", stream abandoned after losing record sync" : "");
    std::printf("  first fault (record %zu): %s\n", stats.first_error_record,
                stats.first_error.c_str());
  }
  dump_metrics();
  if (failed) {
    std::fprintf(stderr, "error: %s\n", error.c_str());
    return 1;
  }
  return 0;
}

int run_stream(const StreamOptions& opt) {
  if (!opt.metrics_path.empty()) {
    obs::set_enabled(true);
    // Pre-register the whole per-stage family so a scrape shows every
    // pipeline stage (checkpoint save/restore included) even before it has
    // run once — absent series and zero series are different signals.
    for (std::size_t s = 0; s < obs::kStageCount; ++s)
      (void)obs::stage_histogram(static_cast<obs::Stage>(s));
  }
  const auto dump_metrics = [&] {
    if (opt.metrics_path.empty()) return;
    obs::write_snapshot_file(opt.metrics_path, obs::Registry::global().snapshot(),
                             opt.metrics_format);
  };

  netflow::TraceReader reader(opt.path, opt.policy);
  std::printf("streaming %s (%s) in %.0f s windows, bounded-memory ingestion",
              opt.path.c_str(), std::string(netflow::to_string(reader.format())).c_str(),
              opt.window);
  if (opt.shards > 1)
    std::printf(", %llu worker shards", static_cast<unsigned long long>(opt.shards));
  std::printf("\n\n");

  int flagged_total = 0, tp_total = 0, degraded_windows = 0;
  const auto on_verdict = [&](const detect::WindowVerdict& v) {
    std::printf("=== window %zu [%.0f, %.0f): %zu flows, %zu internal hosts%s ===\n",
                v.window_index, v.window_start, v.window_end, v.flows_seen, v.features.size(),
                v.degraded ? " [DEGRADED]" : "");
    if (v.degraded) {
      ++degraded_windows;
      std::printf("  timing budget exceeded: shed %zu hosts' timing state (%zu samples);\n"
                  "  volume/failed-rate evidence stayed exact\n",
                  v.hosts_shed, v.timing_samples_shed);
    }
    if (v.result.plotters.empty()) {
      std::printf("  nothing flagged\n\n");
      return;
    }
    std::printf("  %-16s %10s %12s %10s %8s  %s\n", "host", "flows", "avg B/flow", "failed%",
                "new-IP%", "assessment");
    for (const simnet::Ipv4 host : v.result.plotters) {
      const detect::HostFeatures& f = v.features.at(host);
      // Ground truth travels in the trace preamble; unknown hosts stay
      // "unlabeled" when the trace carries none.
      const auto it = reader.truth().find(host);
      const netflow::HostKind kind =
          it == reader.truth().end() ? netflow::HostKind::kUnknown : it->second;
      const bool is_bot = netflow::host_class(kind) == netflow::HostClass::kPlotter;
      std::printf("  %-16s %10zu %12.0f %9.1f%% %7.1f%%  %s (%s)\n", host.to_string().c_str(),
                  f.flows_initiated, f.volume(detect::VolumeMetric::kSentPerFlow),
                  f.failed_rate() * 100.0, f.new_ip_fraction() * 100.0,
                  is_bot ? "TRUE POSITIVE" : "false alarm",
                  std::string(netflow::to_string(kind)).c_str());
      ++flagged_total;
      if (is_bot) ++tp_total;
    }
    std::printf("\n");
  };

  // Flag absent: the original single detector. "--shards N" (N >= 1) runs
  // the sharded detector — at N == 1 its verdicts are bit-identical, so the
  // two branches print the same report, but its checkpoints are TPSH images
  // (a --resume must use the same path family it saved with).
  if (opt.shards == 0) {
    detect::StreamingConfig cfg;
    cfg.window = opt.window;
    cfg.is_internal = detect::default_internal_predicate;
    cfg.timing_budget = static_cast<std::size_t>(opt.timing_budget);
    detect::StreamingDetector detector(cfg, on_verdict);
    return drive_stream(opt, reader, detector, dump_metrics, flagged_total, tp_total,
                        degraded_windows);
  }
  shard::ShardedConfig cfg;
  cfg.shards = static_cast<std::size_t>(opt.shards);
  cfg.window = opt.window;
  cfg.is_internal = detect::default_internal_predicate;
  cfg.timing_budget = static_cast<std::size_t>(opt.timing_budget);
  shard::ShardedDetector detector(cfg, on_verdict);
  return drive_stream(opt, reader, detector, dump_metrics, flagged_total, tp_total,
                      degraded_windows);
}

int parse_stream_args(int argc, char** argv, StreamOptions& opt) {
  opt.path = argv[2];
  int i = 3;
  if (i < argc && std::strncmp(argv[i], "--", 2) != 0) {
    if (!parse_double_arg(argv[i], opt.window) || opt.window <= 0.0) {
      std::fprintf(stderr, "bad window '%s': must be a positive number of seconds\n", argv[i]);
      return usage(argv[0]);
    }
    ++i;
  }
  for (; i < argc; ++i) {
    const std::string_view flag = argv[i];
    const auto value = [&]() -> const char* { return i + 1 < argc ? argv[++i] : nullptr; };
    if (flag == "--policy") {
      const char* v = value();
      std::uint64_t n = 0;
      if (v != nullptr && std::strcmp(v, "strict") == 0) {
        opt.policy = netflow::ErrorPolicy::strict();
      } else if (v != nullptr && std::strcmp(v, "skip") == 0) {
        opt.policy = netflow::ErrorPolicy::skip();
      } else if (v != nullptr && std::strncmp(v, "stop-after=", 11) == 0 &&
                 parse_u64_arg(v + 11, n)) {
        opt.policy = netflow::ErrorPolicy::stop_after(static_cast<std::size_t>(n));
      } else {
        std::fprintf(stderr, "bad --policy '%s'\n", v == nullptr ? "(missing)" : v);
        return usage(argv[0]);
      }
    } else if (flag == "--checkpoint") {
      const char* v = value();
      if (v == nullptr) return usage(argv[0]);
      opt.checkpoint_path = v;
    } else if (flag == "--checkpoint-every") {
      const char* v = value();
      if (v == nullptr || !parse_u64_arg(v, opt.checkpoint_every) ||
          opt.checkpoint_every == 0) {
        std::fprintf(stderr, "bad --checkpoint-every '%s': must be a positive integer\n",
                     v == nullptr ? "(missing)" : v);
        return usage(argv[0]);
      }
    } else if (flag == "--resume") {
      const char* v = value();
      if (v == nullptr) return usage(argv[0]);
      opt.resume_path = v;
    } else if (flag == "--timing-budget") {
      const char* v = value();
      if (v == nullptr || !parse_u64_arg(v, opt.timing_budget)) {
        std::fprintf(stderr, "bad --timing-budget '%s': must be a non-negative integer\n",
                     v == nullptr ? "(missing)" : v);
        return usage(argv[0]);
      }
    } else if (flag == "--metrics") {
      const char* v = value();
      if (v == nullptr || *v == '\0') {
        std::fprintf(stderr, "bad --metrics: expected PATH[,interval_s]\n");
        return usage(argv[0]);
      }
      const std::string_view arg = v;
      const std::size_t comma = arg.rfind(',');
      if (comma == std::string_view::npos) {
        opt.metrics_path = std::string(arg);
      } else {
        const std::string interval(arg.substr(comma + 1));
        if (!parse_double_arg(interval.c_str(), opt.metrics_interval) ||
            opt.metrics_interval <= 0.0) {
          std::fprintf(stderr, "bad --metrics interval '%s': must be a positive number\n",
                       interval.c_str());
          return usage(argv[0]);
        }
        opt.metrics_path = std::string(arg.substr(0, comma));
      }
      if (opt.metrics_path.empty()) {
        std::fprintf(stderr, "bad --metrics '%s': empty path\n", v);
        return usage(argv[0]);
      }
    } else if (flag == "--shards") {
      const char* v = value();
      if (v == nullptr || !parse_u64_arg(v, opt.shards) || opt.shards == 0) {
        std::fprintf(stderr, "bad --shards '%s': must be a positive integer\n",
                     v == nullptr ? "(missing)" : v);
        return usage(argv[0]);
      }
    } else if (flag == "--metrics-format") {
      const char* v = value();
      try {
        if (v == nullptr) throw util::ConfigError("missing value");
        opt.metrics_format = obs::exposition_format_from_string(v);
      } catch (const std::exception&) {
        std::fprintf(stderr, "bad --metrics-format '%s': expected prom|json\n",
                     v == nullptr ? "(missing)" : v);
        return usage(argv[0]);
      }
    } else {
      std::fprintf(stderr, "unknown option '%s'\n", argv[i]);
      return usage(argv[0]);
    }
  }
  return -1;  // parsed OK
}

}  // namespace

int run_send(int argc, char** argv) {
  svc::SenderOptions opt;
  const std::string trace = argv[2];
  for (int i = 3; i < argc; ++i) {
    const std::string_view flag = argv[i];
    const char* v = i + 1 < argc ? argv[i + 1] : nullptr;
    if (flag == "--endpoint" && v != nullptr) {
      opt.endpoint = v;
      ++i;
    } else if (flag == "--tenant" && v != nullptr) {
      opt.tenant = v;
      ++i;
    } else {
      return usage(argv[0]);
    }
  }
  if (opt.endpoint.empty() || opt.tenant.empty()) return usage(argv[0]);
  svc::FrameSender sender(opt);
  const svc::SendReport report = sender.stream(trace);
  std::printf("sent %llu rows in %llu frames (%llu reconnects)\n"
              "daemon accounting: %llu accepted = %llu ingested + %llu shed + %llu "
              "quarantined (+ queued)\n",
              static_cast<unsigned long long>(report.rows_sent),
              static_cast<unsigned long long>(report.frames_sent),
              static_cast<unsigned long long>(report.reconnects),
              static_cast<unsigned long long>(report.accepted),
              static_cast<unsigned long long>(report.ingested),
              static_cast<unsigned long long>(report.shed),
              static_cast<unsigned long long>(report.quarantined));
  return 0;
}

int main(int argc, char** argv) {
  if (argc > 1 && std::string(argv[1]) == "--stream") {
    if (argc < 3) return usage(argv[0]);
    StreamOptions opt;
    const int rc = parse_stream_args(argc, argv, opt);
    if (rc >= 0) return rc;
    util::install_signal_handlers();
    try {
      return run_stream(opt);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "error: %s\n", e.what());
      return 1;
    }
  }
  if (argc > 1 && std::string(argv[1]) == "--send") {
    if (argc < 3) return usage(argv[0]);
    try {
      return run_send(argc, argv);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "error: %s\n", e.what());
      return 1;
    }
  }

  double days_value = 5;
  std::uint64_t seed = 20100621;
  if (argc > 1 && (!parse_double_arg(argv[1], days_value) || days_value <= 0 ||
                   days_value != static_cast<double>(static_cast<int>(days_value)))) {
    std::fprintf(stderr, "bad days '%s': must be a positive integer\n", argv[1]);
    return usage(argv[0]);
  }
  if (argc > 2 && !parse_u64_arg(argv[2], seed)) {
    std::fprintf(stderr, "bad seed '%s': must be a non-negative integer\n", argv[2]);
    return usage(argv[0]);
  }
  const int days = static_cast<int>(days_value);

  // The infection: Storm bots have a foothold on campus. The honeynet trace
  // stands in for their command-and-control traffic.
  botnet::HoneynetConfig honeynet;
  honeynet.seed = seed;
  const netflow::TraceSet storm = botnet::generate_storm_trace(honeynet);
  const netflow::TraceSet no_nugache;

  trace::CampusConfig campus;
  campus.seed = seed;

  // θ_hm's pairwise kernels honor TRADEPLOT_THREADS; the verdicts are
  // bit-identical no matter how many workers run them.
  std::printf("pairwise kernels on %zu thread(s)\n\n", util::resolve_threads());

  int tp_total = 0, fp_total = 0, bots_total = 0;
  for (int d = 0; d < days; ++d) {
    const eval::DayData day =
        eval::make_day(campus, storm, no_nugache, static_cast<std::uint64_t>(d));
    const detect::FindPlottersResult result = detect::find_plotters(day.features);

    std::printf("=== day %d: %zu flows from %zu internal hosts ===\n", d + 1,
                day.combined.flows().size(), day.features.size());
    std::printf("  pipeline: %zu hosts -> %zu after reduction -> %zu in S_vol u S_churn "
                "-> %zu flagged\n",
                result.input.size(), result.reduced.size(), result.vol_or_churn.size(),
                result.plotters.size());
    if (result.plotters.empty()) {
      std::printf("  nothing flagged today\n\n");
      continue;
    }
    std::printf("  %-16s %10s %12s %10s %8s  %s\n", "host", "flows", "avg B/flow", "failed%",
                "new-IP%", "assessment");
    for (const simnet::Ipv4 host : result.plotters) {
      const detect::HostFeatures& f = day.features.at(host);
      std::printf("  %-16s %10zu %12.0f %9.1f%% %7.1f%%  %s\n", host.to_string().c_str(),
                  f.flows_initiated, f.volume(detect::VolumeMetric::kSentPerFlow),
                  f.failed_rate() * 100.0, f.new_ip_fraction() * 100.0,
                  verdict(day, host).c_str());
      if (day.is_plotter(host)) ++tp_total;
      else ++fp_total;
    }
    bots_total += static_cast<int>(day.storm_hosts.size());
    std::printf("\n");
  }

  std::printf("=== week summary ===\n");
  std::printf("  caught %d of %d bot-days (%.1f%%), %d false alarms across %d days\n", tp_total,
              bots_total, bots_total ? 100.0 * tp_total / bots_total : 0.0, fp_total, days);
  return 0;
}
