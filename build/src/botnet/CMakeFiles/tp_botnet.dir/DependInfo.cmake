
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/botnet/honeynet.cpp" "src/botnet/CMakeFiles/tp_botnet.dir/honeynet.cpp.o" "gcc" "src/botnet/CMakeFiles/tp_botnet.dir/honeynet.cpp.o.d"
  "/root/repo/src/botnet/nugache.cpp" "src/botnet/CMakeFiles/tp_botnet.dir/nugache.cpp.o" "gcc" "src/botnet/CMakeFiles/tp_botnet.dir/nugache.cpp.o.d"
  "/root/repo/src/botnet/storm.cpp" "src/botnet/CMakeFiles/tp_botnet.dir/storm.cpp.o" "gcc" "src/botnet/CMakeFiles/tp_botnet.dir/storm.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/tp_util.dir/DependInfo.cmake"
  "/root/repo/build/src/simnet/CMakeFiles/tp_simnet.dir/DependInfo.cmake"
  "/root/repo/build/src/netflow/CMakeFiles/tp_netflow.dir/DependInfo.cmake"
  "/root/repo/build/src/p2p/CMakeFiles/tp_p2p.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
