file(REMOVE_RECURSE
  "CMakeFiles/netflow_trace_set_test.dir/netflow_trace_set_test.cpp.o"
  "CMakeFiles/netflow_trace_set_test.dir/netflow_trace_set_test.cpp.o.d"
  "netflow_trace_set_test"
  "netflow_trace_set_test.pdb"
  "netflow_trace_set_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/netflow_trace_set_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
