// The monitor daemon: FindPlotters as a long-running network service.
//
// One process hosts N tenant universes (src/svc/tenant.h). Clients connect
// to the ingest endpoint, speak the TPMF frame protocol (src/svc/frame.h),
// and stream flows; a second, optional HTTP endpoint serves health,
// readiness, per-tenant accounting, and Prometheus metrics.
//
// Failure model (DESIGN.md §17):
//  * a connection is untrusted input: framing garbage resyncs with
//    accounting, malformed flow records go through the tenant's ErrorPolicy
//    quarantine, a silent client is disconnected by read/idle timeouts;
//  * a slow detector is handled per tenant — block (lossless backpressure
//    through TCP) or shed (accounted loss), never unbounded queueing;
//  * a crash (kill -9) loses at most the flows since the last checkpoint,
//    and those are re-sent: HelloAck tells a reconnecting client the
//    accepted-row cursor, so the client rewinds and the verdict stream is
//    the same as an uninterrupted run (under the block policy);
//  * SIGTERM/SIGINT is a graceful stop: drain queues, final checkpoints,
//    flush partial windows, exit 0. SIGHUP re-reads the config file.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "svc/config.h"
#include "svc/net.h"
#include "svc/tenant.h"
#include "util/clock.h"

namespace tradeplot::svc {

class Daemon {
 public:
  explicit Daemon(DaemonConfig config, util::Clock& clock = util::Clock::system());
  ~Daemon();
  Daemon(const Daemon&) = delete;
  Daemon& operator=(const Daemon&) = delete;

  /// Binds the endpoints, restores and starts every tenant, and spawns the
  /// accept loops. Throws util::IoError / util::ConfigError on an unusable
  /// config; after start() returns the daemon is serving.
  void start();

  /// Graceful stop (idempotent): stop accepting, close connections, drain
  /// tenant queues, final checkpoint + partial-window flush per tenant.
  void stop();

  /// Applies a re-read config: updates timeouts and per-tenant reloadable
  /// knobs, starts tenants that are new in the file. Returns a one-line
  /// human summary for the operator log.
  std::string reload(const DaemonConfig& fresh);

  [[nodiscard]] Tenant* find_tenant(const std::string& name);
  [[nodiscard]] std::vector<Tenant*> tenants();

  /// Bound ports (after start); 0 for unix-domain endpoints. Lets tests and
  /// the CLI print the actual port when the config said ":0".
  [[nodiscard]] std::uint16_t ingest_port() const { return ingest_port_; }
  [[nodiscard]] std::uint16_t http_port() const { return http_port_; }

  [[nodiscard]] bool running() const { return running_.load(std::memory_order_relaxed); }

 private:
  void accept_loop();
  void http_loop();
  void housekeeping_loop();
  void serve_connection(Fd fd);
  void serve_http(Fd fd);
  [[nodiscard]] std::string http_response_for(const std::string& path);
  void track_thread(std::thread t);

  DaemonConfig config_;  // endpoints/state_dir fixed; tenant list append-only
  util::Clock& clock_;

  std::mutex mutex_;  // guards tenants_ and threads_
  std::vector<std::unique_ptr<Tenant>> tenants_;
  std::vector<std::thread> threads_;

  Fd ingest_listener_;
  Fd http_listener_;
  std::uint16_t ingest_port_ = 0;
  std::uint16_t http_port_ = 0;

  std::atomic<bool> running_{false};
  std::atomic<bool> stopping_{false};
  // Reloadable without a lock on the hot path.
  std::atomic<double> read_timeout_{30.0};
  std::atomic<double> idle_timeout_{300.0};

  double started_at_ = 0.0;
  std::uint64_t uptime_reported_ = 0;  // housekeeping thread only
};

}  // namespace tradeplot::svc
