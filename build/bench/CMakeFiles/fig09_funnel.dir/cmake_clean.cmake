file(REMOVE_RECURSE
  "CMakeFiles/fig09_funnel.dir/fig09_funnel.cpp.o"
  "CMakeFiles/fig09_funnel.dir/fig09_funnel.cpp.o.d"
  "fig09_funnel"
  "fig09_funnel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_funnel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
