// Cooperative shutdown and reload flags.
//
// Long-running tools (campus_monitor --stream, campus_monitord) must survive
// SIGINT/SIGTERM by finishing the current unit of work, writing a final
// checkpoint, and exiting 0 — not by dying mid-window. Signal handlers can
// do almost nothing safely, so the handlers installed here only set
// process-global atomic flags; the ingestion loops poll them at record/batch
// boundaries, and the stream-retry helpers (util/stream_retry.h) consult
// them so a blocked read wakes up as a clean end-of-input instead of
// retrying forever.
//
// SIGHUP sets a separate reload flag (daemon config hot-reload); SIGPIPE is
// ignored (socket writes report EPIPE instead of killing the process).
#pragma once

#include <csignal>

namespace tradeplot::util {

/// Requests cooperative shutdown. Async-signal-safe.
void request_shutdown() noexcept;

/// True once shutdown was requested (sticky until clear_shutdown).
[[nodiscard]] bool shutdown_requested() noexcept;

/// Clears the shutdown flag (tests, or a supervisor restarting the loop).
void clear_shutdown() noexcept;

/// Requests a config reload. Async-signal-safe.
void request_reload() noexcept;

/// Returns the reload flag and clears it, so one SIGHUP triggers exactly one
/// reload.
[[nodiscard]] bool consume_reload() noexcept;

/// Installs SIGINT/SIGTERM -> request_shutdown, SIGHUP -> request_reload,
/// and SIG_IGN for SIGPIPE. Handlers are installed without SA_RESTART so a
/// blocked read returns EINTR and the retry helpers can notice the flag.
/// Idempotent.
void install_signal_handlers();

/// Blocks SIGINT/SIGTERM/SIGHUP in the calling thread for the scope and
/// restores the previous mask on destruction. Wrap worker-thread creation
/// in one of these: spawned threads inherit the blocked mask (race-free),
/// so the kernel can only deliver a process-directed shutdown signal to a
/// thread that keeps them unblocked — the main thread. Without the mask
/// the kernel may pick a pool thread to run the handler: the flag is set,
/// but the main thread stays parked in read(2) and never sees the EINTR
/// that install_signal_handlers arranged for.
class ScopedWorkerSignalMask {
 public:
  ScopedWorkerSignalMask() noexcept;
  ~ScopedWorkerSignalMask();
  ScopedWorkerSignalMask(const ScopedWorkerSignalMask&) = delete;
  ScopedWorkerSignalMask& operator=(const ScopedWorkerSignalMask&) = delete;

 private:
  sigset_t old_{};
};

}  // namespace tradeplot::util
