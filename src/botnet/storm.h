// Storm (Peacomm) bot behaviour model.
//
// Storm's command-and-control rode the Overnet DHT (Kademlia with 128-bit
// MD4 ids) — the same substrate as eDonkey/eMule file-sharing, which is the
// paper's central difficulty. Behaviours modelled, following the published
// analyses the paper cites (Grizzard et al.; Porras et al.; Holz et al.;
// Stover et al.):
//   * a stored peer list used for bootstrapping and ongoing contact — the
//     source of Storm's low destination churn,
//   * an *active neighbour set* pinged on a fast timer (tens of seconds):
//     Overnet route maintenance, the dominant traffic component and the
//     sharp low-interval spike of the paper's Fig. 3(a). Dead neighbours
//     keep getting pinged for a while before being replaced from the list —
//     Storm's share of failed connections,
//   * periodic publicize sweeps over the whole stored list (tens of
//     minutes), so every stored peer is re-contacted throughout the day,
//   * periodic key searches for the day's command rendezvous hashes
//     (Storm derived them from the date plus a small random integer),
//     occasionally learning fresh peers,
//   * tiny UDP control flows throughout; no bulk transfer ever rides the
//     P2P channel (file pulls went over HTTP, and the honeynet traces the
//     paper uses blocked attack traffic, so control traffic dominates).
//
// All timers are identical across bots (same binary) — the θ_hm signal.
#pragma once

#include <vector>

#include "botnet/evasion.h"
#include "netflow/app_env.h"
#include "netflow/flow_emit.h"
#include "p2p/kademlia.h"
#include "util/rng.h"

namespace tradeplot::botnet {

struct StormConfig {
  int peer_list_size = 120;
  double dead_peer_frac = 0.4;  // stale entries in the stored list
  // Active neighbour maintenance.
  int active_neighbours = 10;
  double keepalive_period = 20.0;  // per-neighbour ping timer (s)
  double keepalive_jitter = 0.5;
  double replace_dead_prob = 0.005;  // per failed ping: swap the slot
  double neighbour_death_prob = 0.0008;  // per ping: live neighbour departs
  // Rendezvous-hash searches / list maintenance: each round walks the next
  // `search_probes` entries of a shuffled ring over the stored list, so the
  // whole list is (re-)touched every list_size/search_probes rounds —
  // roughly half an hour with the defaults, which keeps Storm's destination
  // churn minimal regardless of where the monitoring window falls.
  double search_period = 600.0;
  double search_jitter = 5.0;
  int search_probes_lo = 28, search_probes_hi = 36;
  double learn_new_peer_prob = 0.008;
  // Overnet message sizes (bytes).
  double msg_lo = 25, msg_hi = 120;
  EvasionConfig evasion{};
};

class StormBot {
 public:
  StormBot(netflow::AppEnv env, simnet::Ipv4 self, util::Pcg32 rng, p2p::Overlay* overlay,
           StormConfig config = {});

  void start();

  static constexpr std::uint16_t kPort = 7871;  // Storm's Overnet UDP port

 private:
  struct Peer {
    simnet::Ipv4 addr;
    bool alive = true;
    bool contacted_before = false;
  };

  void ping_neighbour(std::size_t slot);
  void search_round();
  void contact_peer(std::size_t index);
  [[nodiscard]] simnet::Ipv4 fresh_peer_addr();
  [[nodiscard]] std::size_t random_list_index();

  netflow::AppEnv env_;
  util::Pcg32 rng_;
  netflow::FlowEmitter emit_;
  p2p::Overlay* overlay_;
  StormConfig config_;
  std::vector<Peer> peers_;
  std::vector<std::size_t> active_;  // slots: indices into peers_
  std::vector<std::size_t> ring_;    // shuffled search order over peers_
  std::size_t ring_pos_ = 0;
};

}  // namespace tradeplot::botnet
