file(REMOVE_RECURSE
  "CMakeFiles/tp_trace.dir/campus.cpp.o"
  "CMakeFiles/tp_trace.dir/campus.cpp.o.d"
  "CMakeFiles/tp_trace.dir/overlay.cpp.o"
  "CMakeFiles/tp_trace.dir/overlay.cpp.o.d"
  "libtp_trace.a"
  "libtp_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tp_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
