#include "netflow/io.h"

#include <array>
#include <cstdint>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string_view>

#include "util/error.h"

namespace tradeplot::netflow {

namespace {

constexpr std::string_view kCsvHeader =
    "src,dst,sport,dport,proto,start,end,pkts_src,pkts_dst,bytes_src,bytes_dst,state,payload";

std::string hex_encode(const unsigned char* data, std::size_t n) {
  static constexpr char kHex[] = "0123456789abcdef";
  std::string out;
  out.reserve(n * 2);
  for (std::size_t i = 0; i < n; ++i) {
    out.push_back(kHex[data[i] >> 4]);
    out.push_back(kHex[data[i] & 0xf]);
  }
  return out;
}

int hex_nibble(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  throw util::ParseError("bad hex digit");
}

std::vector<std::string> split(const std::string& line, char sep) {
  std::vector<std::string> out;
  std::size_t pos = 0;
  for (;;) {
    const std::size_t next = line.find(sep, pos);
    if (next == std::string::npos) {
      out.push_back(line.substr(pos));
      return out;
    }
    out.push_back(line.substr(pos, next - pos));
    pos = next + 1;
  }
}

HostKind host_kind_from_string(std::string_view s) {
  for (int i = 0; i <= static_cast<int>(HostKind::kNugache); ++i) {
    const auto kind = static_cast<HostKind>(i);
    if (to_string(kind) == s) return kind;
  }
  throw util::ParseError("unknown host kind '" + std::string(s) + "'");
}

}  // namespace

void write_csv(std::ostream& out, const TraceSet& trace) {
  // Full double precision: flow timestamps must round-trip exactly.
  out.precision(17);
  out << "#window," << trace.window_start() << ',' << trace.window_end() << '\n';
  for (const auto& [ip, kind] : trace.truth())
    out << "#truth," << ip.to_string() << ',' << to_string(kind) << '\n';
  out << kCsvHeader << '\n';
  for (const FlowRecord& r : trace.flows()) {
    out << r.src.to_string() << ',' << r.dst.to_string() << ',' << r.sport << ',' << r.dport
        << ',' << to_string(r.proto) << ',' << r.start_time << ',' << r.end_time << ','
        << r.pkts_src << ',' << r.pkts_dst << ',' << r.bytes_src << ',' << r.bytes_dst << ','
        << to_string(r.state) << ',' << hex_encode(r.payload.data(), r.payload_len) << '\n';
  }
  if (!out) throw util::IoError("CSV write failed");
}

TraceSet read_csv(std::istream& in) {
  TraceSet trace;
  std::string line;
  bool seen_header = false;
  std::size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    if (line.empty()) continue;
    if (line[0] == '#') {
      const auto parts = split(line, ',');
      if (parts[0] == "#window" && parts.size() == 3) {
        trace.set_window(std::stod(parts[1]), std::stod(parts[2]));
      } else if (parts[0] == "#truth" && parts.size() == 3) {
        trace.set_truth(simnet::Ipv4::parse(parts[1]), host_kind_from_string(parts[2]));
      } else {
        throw util::ParseError("bad comment line " + std::to_string(lineno));
      }
      continue;
    }
    if (!seen_header) {
      if (line != kCsvHeader) throw util::ParseError("missing CSV header");
      seen_header = true;
      continue;
    }
    const auto f = split(line, ',');
    if (f.size() != 13) throw util::ParseError("bad field count on line " + std::to_string(lineno));
    try {
      FlowRecord r;
      r.src = simnet::Ipv4::parse(f[0]);
      r.dst = simnet::Ipv4::parse(f[1]);
      r.sport = static_cast<std::uint16_t>(std::stoul(f[2]));
      r.dport = static_cast<std::uint16_t>(std::stoul(f[3]));
      r.proto = protocol_from_string(f[4]);
      r.start_time = std::stod(f[5]);
      r.end_time = std::stod(f[6]);
      r.pkts_src = std::stoull(f[7]);
      r.pkts_dst = std::stoull(f[8]);
      r.bytes_src = std::stoull(f[9]);
      r.bytes_dst = std::stoull(f[10]);
      r.state = flow_state_from_string(f[11]);
      const std::string& hex = f[12];
      if (hex.size() % 2 != 0 || hex.size() / 2 > kPayloadPrefixLen)
        throw util::ParseError("bad payload hex");
      r.payload_len = static_cast<std::uint8_t>(hex.size() / 2);
      for (std::size_t i = 0; i < r.payload_len; ++i) {
        r.payload[i] = static_cast<unsigned char>((hex_nibble(hex[2 * i]) << 4) |
                                                  hex_nibble(hex[2 * i + 1]));
      }
      trace.add_flow(std::move(r));
    } catch (const util::ParseError&) {
      throw;
    } catch (const std::exception& e) {
      throw util::ParseError("line " + std::to_string(lineno) + ": " + e.what());
    }
  }
  if (!seen_header) throw util::ParseError("empty CSV trace");
  return trace;
}

namespace {

constexpr std::uint32_t kBinMagic = 0x54504654;  // "TPFT"
constexpr std::uint32_t kBinVersion = 1;

template <typename T>
void put(std::ostream& out, T value) {
  out.write(reinterpret_cast<const char*>(&value), sizeof(value));
}

template <typename T>
T get(std::istream& in) {
  T value{};
  in.read(reinterpret_cast<char*>(&value), sizeof(value));
  if (!in) throw util::IoError("binary trace: short read");
  return value;
}

}  // namespace

void write_binary(std::ostream& out, const TraceSet& trace) {
  put(out, kBinMagic);
  put(out, kBinVersion);
  put(out, trace.window_start());
  put(out, trace.window_end());
  put(out, static_cast<std::uint64_t>(trace.truth().size()));
  for (const auto& [ip, kind] : trace.truth()) {
    put(out, ip.value());
    put(out, static_cast<std::uint8_t>(kind));
  }
  put(out, static_cast<std::uint64_t>(trace.flows().size()));
  for (const FlowRecord& r : trace.flows()) {
    put(out, r.src.value());
    put(out, r.dst.value());
    put(out, r.sport);
    put(out, r.dport);
    put(out, static_cast<std::uint8_t>(r.proto));
    put(out, r.start_time);
    put(out, r.end_time);
    put(out, r.pkts_src);
    put(out, r.pkts_dst);
    put(out, r.bytes_src);
    put(out, r.bytes_dst);
    put(out, static_cast<std::uint8_t>(r.state));
    put(out, r.payload_len);
    out.write(reinterpret_cast<const char*>(r.payload.data()), r.payload_len);
  }
  if (!out) throw util::IoError("binary trace write failed");
}

TraceSet read_binary(std::istream& in) {
  if (get<std::uint32_t>(in) != kBinMagic) throw util::ParseError("binary trace: bad magic");
  if (get<std::uint32_t>(in) != kBinVersion) throw util::ParseError("binary trace: bad version");
  TraceSet trace;
  const double ws = get<double>(in);
  const double we = get<double>(in);
  trace.set_window(ws, we);
  const auto truth_count = get<std::uint64_t>(in);
  for (std::uint64_t i = 0; i < truth_count; ++i) {
    const auto ip = simnet::Ipv4(get<std::uint32_t>(in));
    const auto kind = static_cast<HostKind>(get<std::uint8_t>(in));
    if (kind > HostKind::kNugache) throw util::ParseError("binary trace: bad host kind");
    trace.set_truth(ip, kind);
  }
  const auto flow_count = get<std::uint64_t>(in);
  for (std::uint64_t i = 0; i < flow_count; ++i) {
    FlowRecord r;
    r.src = simnet::Ipv4(get<std::uint32_t>(in));
    r.dst = simnet::Ipv4(get<std::uint32_t>(in));
    r.sport = get<std::uint16_t>(in);
    r.dport = get<std::uint16_t>(in);
    r.proto = static_cast<Protocol>(get<std::uint8_t>(in));
    r.start_time = get<double>(in);
    r.end_time = get<double>(in);
    r.pkts_src = get<std::uint64_t>(in);
    r.pkts_dst = get<std::uint64_t>(in);
    r.bytes_src = get<std::uint64_t>(in);
    r.bytes_dst = get<std::uint64_t>(in);
    r.state = static_cast<FlowState>(get<std::uint8_t>(in));
    r.payload_len = get<std::uint8_t>(in);
    if (r.payload_len > kPayloadPrefixLen) throw util::ParseError("binary trace: bad payload len");
    in.read(reinterpret_cast<char*>(r.payload.data()), r.payload_len);
    if (!in) throw util::IoError("binary trace: short payload read");
    trace.add_flow(std::move(r));
  }
  return trace;
}

namespace {

template <typename Fn>
void with_ofstream(const std::string& path, Fn fn) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw util::IoError("cannot open for writing: " + path);
  fn(out);
}

template <typename Fn>
auto with_ifstream(const std::string& path, Fn fn) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw util::IoError("cannot open for reading: " + path);
  return fn(in);
}

}  // namespace

void write_csv_file(const std::string& path, const TraceSet& trace) {
  with_ofstream(path, [&](std::ostream& out) { write_csv(out, trace); });
}

TraceSet read_csv_file(const std::string& path) {
  return with_ifstream(path, [](std::istream& in) { return read_csv(in); });
}

void write_binary_file(const std::string& path, const TraceSet& trace) {
  with_ofstream(path, [&](std::ostream& out) { write_binary(out, trace); });
}

TraceSet read_binary_file(const std::string& path) {
  return with_ifstream(path, [](std::istream& in) { return read_binary(in); });
}

}  // namespace tradeplot::netflow
