#include "obs/exposition.h"

#include <charconv>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>

#include "util/error.h"
#include "util/json.h"

namespace tradeplot::obs {

namespace {

/// Shortest round-trip rendering; Prometheus spells non-finite values out.
std::string format_double(double v) {
  if (std::isnan(v)) return "NaN";
  if (std::isinf(v)) return v > 0 ? "+Inf" : "-Inf";
  char buf[32];
  const auto [p, ec] = std::to_chars(buf, buf + sizeof buf, v);
  return ec == std::errc() ? std::string(buf, p) : std::string("NaN");
}

/// Exposition-format escaping for label values: backslash, double quote,
/// and line feed (help text uses the same rules minus the quote).
std::string escape_label_value(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
  return out;
}

std::string escape_help(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
  return out;
}

/// Renders `{k="v",...}` with `extra` ("le" for buckets) appended; empty
/// label sets render as nothing.
std::string label_block(const Labels& labels, const char* extra_key = nullptr,
                        const std::string& extra_value = {}) {
  if (labels.empty() && extra_key == nullptr) return {};
  std::string out = "{";
  bool first = true;
  for (const auto& [k, v] : labels) {
    if (!first) out += ',';
    first = false;
    out += k;
    out += "=\"";
    out += escape_label_value(v);
    out += '"';
  }
  if (extra_key != nullptr) {
    if (!first) out += ',';
    out += extra_key;
    out += "=\"";
    out += escape_label_value(extra_value);
    out += '"';
  }
  out += '}';
  return out;
}

}  // namespace

std::string_view to_string(ExpositionFormat f) {
  switch (f) {
    case ExpositionFormat::kPrometheus: return "prom";
    case ExpositionFormat::kJson: return "json";
  }
  return "unknown";
}

ExpositionFormat exposition_format_from_string(std::string_view s) {
  if (s == "prom" || s == "prometheus") return ExpositionFormat::kPrometheus;
  if (s == "json") return ExpositionFormat::kJson;
  throw util::ConfigError("unknown metrics format '" + std::string(s) +
                          "' (expected prom|json)");
}

std::string to_prometheus(const MetricsSnapshot& snapshot) {
  std::string out;
  std::string_view current_family;
  for (const SnapshotSample& s : snapshot.samples) {
    // Samples are sorted by name, so each family's HELP/TYPE header goes out
    // once, before its first sample.
    if (s.name != current_family) {
      current_family = s.name;
      out += "# HELP " + s.name + ' ' + escape_help(s.help) + '\n';
      out += "# TYPE " + s.name + ' ';
      out += to_string(s.type);
      out += '\n';
    }
    switch (s.type) {
      case MetricType::kCounter:
      case MetricType::kGauge:
        out += s.name + label_block(s.labels) + ' ' + format_double(s.value) + '\n';
        break;
      case MetricType::kHistogram: {
        const HistogramValue& h = s.histogram;
        std::uint64_t cumulative = 0;
        for (std::size_t i = 0; i < h.bounds.size(); ++i) {
          cumulative += h.counts[i];
          out += s.name + "_bucket" +
                 label_block(s.labels, "le", format_double(h.bounds[i])) + ' ' +
                 std::to_string(cumulative) + '\n';
        }
        out += s.name + "_bucket" + label_block(s.labels, "le", "+Inf") + ' ' +
               std::to_string(h.count) + '\n';
        out += s.name + "_sum" + label_block(s.labels) + ' ' + format_double(h.sum) +
               '\n';
        out += s.name + "_count" + label_block(s.labels) + ' ' +
               std::to_string(h.count) + '\n';
        break;
      }
    }
  }
  return out;
}

std::string to_json(const MetricsSnapshot& snapshot) {
  std::ostringstream os;
  util::JsonWriter w(os);
  w.begin_object();
  w.key("metrics");
  w.begin_array();
  for (const SnapshotSample& s : snapshot.samples) {
    w.begin_object();
    w.kv("name", s.name);
    w.kv("help", s.help);
    w.kv("type", to_string(s.type));
    w.key("labels");
    w.begin_object();
    for (const auto& [k, v] : s.labels) w.kv(k, v);
    w.end_object();
    switch (s.type) {
      case MetricType::kCounter:
      case MetricType::kGauge: w.kv("value", s.value); break;
      case MetricType::kHistogram: {
        const HistogramValue& h = s.histogram;
        w.kv("count", h.count);
        w.kv("sum", h.sum);
        w.key("buckets");
        w.begin_array();
        std::uint64_t cumulative = 0;
        for (std::size_t i = 0; i < h.bounds.size(); ++i) {
          cumulative += h.counts[i];
          w.begin_object();
          w.kv("le", format_double(h.bounds[i]));
          w.kv("count", cumulative);
          w.end_object();
        }
        w.begin_object();
        w.kv("le", "+Inf");
        w.kv("count", h.count);
        w.end_object();
        w.end_array();
        break;
      }
    }
    w.end_object();
  }
  w.end_array();
  w.end_object();
  os << '\n';
  return os.str();
}

void write_snapshot(std::ostream& out, const MetricsSnapshot& snapshot,
                    ExpositionFormat format) {
  switch (format) {
    case ExpositionFormat::kPrometheus: out << to_prometheus(snapshot); break;
    case ExpositionFormat::kJson: out << to_json(snapshot); break;
  }
}

void write_snapshot_file(const std::string& path, const MetricsSnapshot& snapshot,
                         ExpositionFormat format) {
  if (path == "-") {
    write_snapshot(std::cout, snapshot, format);
    std::cout.flush();
    return;
  }
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) throw util::IoError("cannot open " + tmp + " for writing");
    write_snapshot(out, snapshot, format);
    out.flush();
    if (!out) throw util::IoError("short write to " + tmp);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    throw util::IoError("cannot rename " + tmp + " to " + path);
  }
}

}  // namespace tradeplot::obs
