file(REMOVE_RECURSE
  "CMakeFiles/detect_find_plotters_test.dir/detect_find_plotters_test.cpp.o"
  "CMakeFiles/detect_find_plotters_test.dir/detect_find_plotters_test.cpp.o.d"
  "detect_find_plotters_test"
  "detect_find_plotters_test.pdb"
  "detect_find_plotters_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/detect_find_plotters_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
