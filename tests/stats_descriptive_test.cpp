#include "stats/descriptive.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "util/error.h"
#include "util/rng.h"

namespace tradeplot::stats {
namespace {

TEST(Descriptive, MeanVarianceStddev) {
  const std::vector<double> xs = {2, 4, 4, 4, 5, 5, 7, 9};
  EXPECT_DOUBLE_EQ(mean(xs), 5.0);
  EXPECT_DOUBLE_EQ(variance(xs), 4.0);
  EXPECT_DOUBLE_EQ(stddev(xs), 2.0);
  EXPECT_DOUBLE_EQ(mean(std::vector<double>{}), 0.0);
  EXPECT_DOUBLE_EQ(variance(std::vector<double>{3.0}), 0.0);
}

TEST(Descriptive, QuantileInterpolation) {
  const std::vector<double> xs = {1, 2, 3, 4};
  EXPECT_DOUBLE_EQ(quantile(xs, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 1.0), 4.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 0.5), 2.5);
  EXPECT_DOUBLE_EQ(quantile(xs, 1.0 / 3.0), 2.0);
}

TEST(Descriptive, QuantileHandlesUnsortedInput) {
  const std::vector<double> xs = {9, 1, 5, 3, 7};
  EXPECT_DOUBLE_EQ(quantile(xs, 0.5), 5.0);
  EXPECT_DOUBLE_EQ(median(xs), 5.0);
}

TEST(Descriptive, QuantileErrors) {
  EXPECT_THROW((void)quantile(std::vector<double>{}, 0.5), util::ConfigError);
  EXPECT_THROW((void)quantile(std::vector<double>{1.0}, -0.1), util::ConfigError);
  EXPECT_THROW((void)quantile(std::vector<double>{1.0}, 1.1), util::ConfigError);
}

TEST(Descriptive, Iqr) {
  const std::vector<double> xs = {1, 2, 3, 4, 5, 6, 7, 8, 9};
  EXPECT_DOUBLE_EQ(iqr(xs), 4.0);
  EXPECT_DOUBLE_EQ(iqr(std::vector<double>{5.0, 5.0, 5.0}), 0.0);
}

TEST(Descriptive, EcdfAt) {
  const std::vector<double> sorted = {1, 2, 2, 3};
  EXPECT_DOUBLE_EQ(ecdf_at(sorted, 0.5), 0.0);
  EXPECT_DOUBLE_EQ(ecdf_at(sorted, 1.0), 0.25);
  EXPECT_DOUBLE_EQ(ecdf_at(sorted, 2.0), 0.75);
  EXPECT_DOUBLE_EQ(ecdf_at(sorted, 10.0), 1.0);
  EXPECT_DOUBLE_EQ(ecdf_at(std::vector<double>{}, 1.0), 0.0);
}

TEST(Descriptive, EcdfCollapsesDuplicates) {
  const std::vector<double> xs = {3, 1, 3, 2, 3};
  const auto points = ecdf(xs);
  ASSERT_EQ(points.size(), 3u);
  EXPECT_DOUBLE_EQ(points[0].value, 1.0);
  EXPECT_DOUBLE_EQ(points[0].fraction, 0.2);
  EXPECT_DOUBLE_EQ(points[2].value, 3.0);
  EXPECT_DOUBLE_EQ(points[2].fraction, 1.0);
}

// Property: quantile_sorted agrees with quantile, and the ECDF evaluated at
// the q-th quantile is >= q.
class QuantileProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(QuantileProperty, SortedAgreesAndEcdfIsConsistent) {
  util::Pcg32 rng(GetParam());
  std::vector<double> xs(200);
  for (double& x : xs) x = rng.lognormal(2.0, 1.5);
  std::vector<double> sorted = xs;
  std::sort(sorted.begin(), sorted.end());
  for (const double q : {0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 1.0}) {
    EXPECT_DOUBLE_EQ(quantile(xs, q), quantile_sorted(sorted, q));
    EXPECT_GE(ecdf_at(sorted, quantile(xs, q)) + 1e-12, q);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, QuantileProperty, ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

}  // namespace
}  // namespace tradeplot::stats
