// Figure 12: challenges for Plotters to evade θ_hm - true positive rate of
// the full pipeline as bots add a random delay (uniform over ±d) before
// each connection to a previously-contacted peer, d from 30 s to 3 h.
//
// Paper shape: TP decays with d; randomisation on the order of minutes is
// needed to evade; a small bump for Nugache at d = 30 s (bots splinter into
// several small-diameter clusters that survive the filter).
#include "bench/bench_util.h"

using namespace tradeplot;

int main() {
  benchx::header("Figure 12 - pipeline TP rate vs evasion delay d (uniform +-d jitter)");

  eval::EvalConfig cfg = benchx::paper_eval_config();
  const std::vector<double> delays = {0, 30, 60, 120, 300, 600, 1800, 3600, 10800};
  std::printf("  sweeping %zu delay values x %d days each...\n\n", delays.size(), cfg.days);
  const auto points = eval::jitter_sweep(cfg, delays);

  std::printf("  %-10s %12s %12s\n", "d (s)", "Storm TP", "Nugache TP");
  for (const auto& p : points) {
    std::printf("  %-10.0f %11.2f%% %11.2f%%\n", p.delay, p.storm_tp * 100.0,
                p.nugache_tp * 100.0);
  }

  benchx::paper_reference(
      "Fig. 12: TP decays as d grows; 'Plotters must randomize their\n"
      "connections to other Plotters by minutes in order to evade\n"
      "detection via this test.' The d=30s Nugache bump (splintering into\n"
      "small tight clusters) may or may not reproduce - it is noise-level\n"
      "in the paper too. Expect: both TPs near their Fig. 9 values at d=0\n"
      "and falling substantially by d in the hundreds-to-thousands of\n"
      "seconds.");
  return 0;
}
