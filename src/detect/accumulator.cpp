#include "detect/accumulator.h"

#include <algorithm>
#include <utility>
#include <vector>

#include "detect/payload_codec.h"

namespace tradeplot::detect {

namespace {

HostWindowState& touch(std::unordered_map<simnet::Ipv4, HostWindowState>& hosts,
                       simnet::Ipv4 host, double t) {
  HostWindowState& state = hosts[host];
  if (!state.seen) {
    state.seen = true;
    state.features.host = host;
    state.features.first_activity = t;
  } else {
    state.features.first_activity = std::min(state.features.first_activity, t);
  }
  return state;
}

}  // namespace

void WindowAccumulator::apply_initiator(simnet::Ipv4 src, simnet::Ipv4 dst, double t,
                                        std::uint64_t bytes_src, bool failed,
                                        std::size_t timing_budget) {
  HostWindowState& state = touch(hosts_, src, t);
  HostFeatures& f = state.features;
  f.flows_initiated += 1;
  if (failed) f.flows_failed += 1;
  f.bytes_sent_initiated += bytes_src;
  // Accumulate the raw start time; churn and interstitials are derived
  // from the sorted per-destination times at window close, so late
  // arrivals land in their true position instead of producing spurious
  // |gap| samples that diverge from the batch extractor.
  //
  // A host whose timing state was shed this window stops buffering (its
  // scalar counters above stay exact); everyone else counts toward the
  // window's timing budget.
  if (!state.timing_shed) {
    state.per_dst_times[dst].push_back(t);
    ++state.timing_samples;
    ++timing_samples_;
    if (timing_budget != 0 && timing_samples_ > timing_budget)
      shed_timing_state(timing_budget);
  }
}

void WindowAccumulator::apply_responder(simnet::Ipv4 dst, double t,
                                        std::uint64_t bytes_dst) {
  HostWindowState& state = touch(hosts_, dst, t);
  state.features.flows_received += 1;
  state.features.bytes_sent_received += bytes_dst;
}

void WindowAccumulator::shed_timing_state(std::size_t timing_budget) {
  // Lowest evidence first: hosts with the fewest buffered timing samples
  // have the least interstitial/churn signal to lose. Ties break by
  // address so the shed set is deterministic for a given flow sequence.
  std::vector<std::pair<std::size_t, simnet::Ipv4>> candidates;
  candidates.reserve(hosts_.size());
  for (const auto& [host, state] : hosts_) {
    if (!state.timing_shed && state.timing_samples > 0)
      candidates.emplace_back(state.timing_samples, host);
  }
  std::sort(candidates.begin(), candidates.end());

  // Hysteresis: shed down to ~3/4 of the budget so one more sample does not
  // immediately re-trigger a full scan-and-sort.
  const std::size_t target = timing_budget - timing_budget / 4;
  for (const auto& [samples, host] : candidates) {
    if (timing_samples_ <= target) break;
    HostWindowState& state = hosts_.at(host);
    timing_samples_ -= state.timing_samples;
    timing_samples_shed_ += state.timing_samples;
    state.timing_samples = 0;
    state.per_dst_times.clear();
    state.timing_shed = true;
    ++hosts_shed_;
  }
}

FeatureMap WindowAccumulator::finalize(double grace) {
  FeatureMap features;
  features.reserve(hosts_.size());
  for (auto& [host, state] : hosts_) {
    finalize_destinations(state.features, state.per_dst_times, grace);
    features.emplace(host, std::move(state.features));
  }
  return features;
}

void WindowAccumulator::reset() {
  hosts_.clear();
  timing_samples_ = 0;
  hosts_shed_ = 0;
  timing_samples_shed_ = 0;
}

void WindowAccumulator::encode(PayloadWriter& w) const {
  w.put(static_cast<std::uint64_t>(timing_samples_));
  w.put(static_cast<std::uint64_t>(hosts_shed_));
  w.put(static_cast<std::uint64_t>(timing_samples_shed_));
  w.put(static_cast<std::uint64_t>(hosts_.size()));
  for (const auto& [host, state] : hosts_) {
    w.put(host.value());
    w.put(static_cast<std::uint8_t>(state.seen));
    w.put(static_cast<std::uint8_t>(state.timing_shed));
    const HostFeatures& f = state.features;
    w.put(static_cast<std::uint64_t>(f.flows_initiated));
    w.put(static_cast<std::uint64_t>(f.flows_failed));
    w.put(static_cast<std::uint64_t>(f.flows_received));
    w.put(f.bytes_sent_initiated);
    w.put(f.bytes_sent_received);
    w.put(static_cast<std::uint64_t>(f.distinct_dsts));
    w.put(static_cast<std::uint64_t>(f.dsts_after_first_hour));
    w.put(f.first_activity);
    w.put_times(f.interstitials);
    w.put(static_cast<std::uint64_t>(state.per_dst_times.size()));
    for (const auto& [dst, times] : state.per_dst_times) {
      w.put(dst.value());
      w.put_times(times);
    }
  }
}

void WindowAccumulator::decode(PayloadReader& r) {
  const auto timing_samples = r.take<std::uint64_t>();
  const auto hosts_shed = r.take<std::uint64_t>();
  const auto samples_shed = r.take<std::uint64_t>();
  const auto host_count = r.take<std::uint64_t>();
  std::unordered_map<simnet::Ipv4, HostWindowState> hosts;
  hosts.reserve(static_cast<std::size_t>(host_count));
  for (std::uint64_t i = 0; i < host_count; ++i) {
    const simnet::Ipv4 host(r.take<std::uint32_t>());
    HostWindowState state;
    state.seen = r.take<std::uint8_t>() != 0;
    state.timing_shed = r.take<std::uint8_t>() != 0;
    HostFeatures& f = state.features;
    f.host = host;
    f.flows_initiated = static_cast<std::size_t>(r.take<std::uint64_t>());
    f.flows_failed = static_cast<std::size_t>(r.take<std::uint64_t>());
    f.flows_received = static_cast<std::size_t>(r.take<std::uint64_t>());
    f.bytes_sent_initiated = r.take<std::uint64_t>();
    f.bytes_sent_received = r.take<std::uint64_t>();
    f.distinct_dsts = static_cast<std::size_t>(r.take<std::uint64_t>());
    f.dsts_after_first_hour = static_cast<std::size_t>(r.take<std::uint64_t>());
    f.first_activity = r.take<double>();
    f.interstitials = r.take_times();
    const auto dst_count = r.take<std::uint64_t>();
    state.per_dst_times.reserve(static_cast<std::size_t>(dst_count));
    for (std::uint64_t d = 0; d < dst_count; ++d) {
      const simnet::Ipv4 dst(r.take<std::uint32_t>());
      state.per_dst_times.emplace(dst, r.take_times());
      state.timing_samples += state.per_dst_times.at(dst).size();
    }
    hosts.emplace(host, std::move(state));
  }
  hosts_ = std::move(hosts);
  timing_samples_ = static_cast<std::size_t>(timing_samples);
  hosts_shed_ = static_cast<std::size_t>(hosts_shed);
  timing_samples_shed_ = static_cast<std::size_t>(samples_shed);
}

}  // namespace tradeplot::detect
