// ShardedDetector — the multi-worker streaming detector.
//
// The single StreamingDetector is one big hash map: every flow's initiator
// and responder state lives in one WindowAccumulator, so ingest is serial by
// construction. ShardedDetector splits the host space across N worker
// shards with a consistent-hash ring (shard/ring.h): each shard owns its
// own WindowAccumulator (columnar ingest path), its own θ_hm signature
// cache, its own checkpoint section, and its own obs gauges. A batch is
// routed once on the ingest thread — a cheap per-row ring lookup producing
// per-shard op lists — and the expensive per-host accumulation (hash-map
// touches, timing buffers) then runs shard-parallel on util::ThreadPool
// workers, each worker touching only its own shard's state (no locks, no
// sharing).
//
// Per-host op order is preserved: a host's ops land in its shard's list in
// row order, and each shard applies its list in order, so every shard's
// accumulator sees exactly the sub-sequence of flows it owns, in arrival
// order. With N == 1 the routed sequence is the full sequence, the timing
// budget and shed points coincide with StreamingDetector's, and the window
// verdicts are bit-identical to it.
//
// At a window close every shard finalizes its features in parallel;
// verdicts then come from find_plotters directly at N == 1, or from the
// global merge stage (shard/merge.h: merged quantile sketches for the
// relative thresholds, two-level θ_hm clustering) at N > 1.
#pragma once

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "detect/accumulator.h"
#include "detect/hm_cache.h"
#include "detect/streaming.h"
#include "shard/merge.h"
#include "shard/ring.h"

namespace tradeplot::shard {

struct ShardedConfig {
  /// Worker shards. 1 reproduces StreamingDetector bit for bit.
  std::size_t shards = 1;
  /// Ring points per shard (balance knob; part of the checkpoint identity).
  std::size_t vnodes = HashRing::kDefaultVnodes;
  /// Detection window length D (seconds).
  double window = 6 * 3600.0;
  /// Predicate for internal hosts (required).
  std::function<bool(simnet::Ipv4)> is_internal;
  /// Churn grace period within the window.
  double new_ip_grace = 3600.0;
  detect::FindPlottersConfig pipeline{};
  /// Whole-detector timing-sample budget (0 = unlimited). Each shard
  /// enforces budget/shards over its own hosts (the exact global shed order
  /// would need cross-shard coordination on the hot path); at shards == 1
  /// the whole budget applies, preserving bit-identity.
  std::size_t timing_budget = 0;
  /// Per-shard θ_hm signature caches (see detect/hm_cache.h).
  bool signature_cache = true;
  /// Worker threads for shard dispatch and window close (0 =
  /// TRADEPLOT_THREADS / hardware concurrency; results are identical at
  /// every thread count).
  std::size_t threads = 0;
  /// Capacity of the merged threshold sketches (shards > 1 only).
  std::size_t sketch_k = 1024;
};

class ShardedDetector {
 public:
  using VerdictSink = std::function<void(const detect::WindowVerdict&)>;

  /// Throws util::ConfigError on shards == 0, vnodes == 0, a non-positive
  /// window, or a missing is_internal/sink.
  ShardedDetector(ShardedConfig config, VerdictSink sink);

  /// Batch ingestion: rows are routed to shards in order, with window rolls
  /// exactly where record-at-a-time ingestion would put them. The range
  /// overload ingests rows [begin, end).
  void ingest(const netflow::FlowBatch& batch);
  void ingest(const netflow::FlowBatch& batch, std::size_t begin, std::size_t end);
  void ingest(const netflow::FlowRecord& flow);

  /// Closes the current window and emits its verdict; idempotent, like
  /// StreamingDetector::flush.
  void flush();

  [[nodiscard]] std::size_t shard_count() const { return config_.shards; }
  [[nodiscard]] const HashRing& ring() const { return ring_; }
  [[nodiscard]] std::size_t windows_emitted() const { return windows_emitted_; }
  [[nodiscard]] std::size_t flows_in_current_window() const { return flows_in_window_; }
  [[nodiscard]] double current_window_start() const { return window_start_; }
  [[nodiscard]] std::uint64_t flows_ingested_total() const { return flows_ingested_total_; }
  /// Hosts currently tracked by shard `s` (bench/test introspection).
  [[nodiscard]] std::size_t shard_host_count(std::size_t s) const;
  /// The merge-stage report of the last emitted window (thresholds, sketch
  /// error bounds, representative count). Meaningful only at shards > 1.
  [[nodiscard]] const MergedPipelineReport& last_merge_report() const {
    return last_report_;
  }

  /// Versioned, CRC-checked image of the full detector: the global window
  /// cursor plus one state section per shard (accumulator + θ_hm cache).
  /// The shard/vnode geometry is part of the image; restoring into a
  /// detector with a different window, grace, shard count, or vnode count
  /// throws util::ConfigError (the routing would no longer match the saved
  /// state). Corrupt images throw util::ParseError, never partially apply.
  void save_checkpoint(std::ostream& out) const;
  void save_checkpoint_file(const std::string& path) const;
  void restore_checkpoint(std::istream& in);
  void restore_checkpoint_file(const std::string& path);

 private:
  void route_row(const netflow::FlowBatch& batch, std::size_t i);
  void apply_pending(const netflow::FlowBatch& batch);
  void roll_to(double time);
  void emit();

  ShardedConfig config_;
  VerdictSink sink_;
  HashRing ring_;
  std::size_t shard_budget_ = 0;  // per-shard timing budget

  std::vector<detect::WindowAccumulator> accumulators_;
  std::vector<detect::HmCache> caches_;

  /// Per-shard routed op lists for the batch segment being ingested: row
  /// index with the top bit marking a responder-side op.
  static constexpr std::uint32_t kResponderBit = 0x80000000u;
  std::vector<std::vector<std::uint32_t>> ops_;
  std::size_t ops_pending_ = 0;

  MergedPipelineReport last_report_{};

  double window_start_ = 0.0;
  bool window_open_ = false;
  std::size_t flows_in_window_ = 0;
  std::size_t windows_emitted_ = 0;
  std::uint64_t flows_ingested_total_ = 0;
};

}  // namespace tradeplot::shard
