// Blocked Bloom filter over 64-bit keys.
//
// The pruned clustering engine memoizes resolved pair distances in a sparse
// hash map keyed by packed (lo, hi) node-id pairs. Most probes miss — the
// whole point of pruning is that almost no pair is ever resolved — and a
// hash-map miss still costs a bucket walk. This filter sits in front of such
// stores: `maybe_contains` returning false is a guarantee the key was never
// inserted, so the caller can skip the map probe entirely. False positives
// only cost the probe that would have happened anyway; they can never change
// a verdict.
//
// Design: single-cache-line-free "blocked" scheme collapsed to one 64-bit
// word per key. The mixed hash picks a word with its high bits and two bit
// positions inside that word with its low bits, so each probe touches exactly
// one word (one cache line) and needs one multiply-shift hash. With
// bits >= 16 per expected key the two-bit-per-key false-positive rate stays
// around 1-2%, which is plenty for a probe gate.
//
// Not thread-safe for concurrent insert; concurrent `maybe_contains` against
// a quiescent filter is fine (plain loads of plain stores published by the
// caller's own synchronization).
#pragma once

#include <cstdint>
#include <vector>

namespace tradeplot::util {

class BloomFilter {
 public:
  BloomFilter() = default;

  // Sizes the filter for `expected_keys` insertions and clears it. Capacity
  // is rounded up to a power of two of at least 1024 bits (16 words) so the
  // word index is a mask, never a modulo.
  void reset(std::size_t expected_keys) {
    std::uint64_t bits = 1024;
    const std::uint64_t want =
        expected_keys > 64 ? static_cast<std::uint64_t>(expected_keys) * 16 : 1024;
    while (bits < want) bits <<= 1;
    words_.assign(static_cast<std::size_t>(bits >> 6), 0);
    mask_ = (bits >> 6) - 1;
  }

  bool empty() const { return words_.empty(); }

  void clear() {
    words_.clear();
    mask_ = 0;
  }

  void insert(std::uint64_t key) {
    const std::uint64_t h = mix(key);
    words_[static_cast<std::size_t>((h >> 32) & mask_)] |= word_bits(h);
  }

  // False => the key was definitely never inserted. True => probe the store.
  // An empty (never-reset) filter returns true for every key: "no filter"
  // must degrade to "always probe", never to "always skip".
  bool maybe_contains(std::uint64_t key) const {
    if (words_.empty()) return true;
    const std::uint64_t h = mix(key);
    const std::uint64_t bits = word_bits(h);
    return (words_[static_cast<std::size_t>((h >> 32) & mask_)] & bits) == bits;
  }

 private:
  // splitmix64 finalizer: full-avalanche, so packed sequential pair keys
  // spread across the whole word array.
  static std::uint64_t mix(std::uint64_t x) {
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
  }

  static std::uint64_t word_bits(std::uint64_t h) {
    return (1ull << (h & 63)) | (1ull << ((h >> 6) & 63));
  }

  std::vector<std::uint64_t> words_;
  std::uint64_t mask_ = 0;
};

}  // namespace tradeplot::util
