#include "stats/simd.h"

#include <cmath>

#if defined(__x86_64__) || defined(__i386__)
#include <immintrin.h>
#define TRADEPLOT_X86 1
#else
#define TRADEPLOT_X86 0
#endif

namespace tradeplot::stats::simd {

namespace {

double l1_scalar(const double* a, const double* b, std::size_t n) {
  double sum = 0.0;
  for (std::size_t i = 0; i < n; ++i) sum += std::abs(a[i] - b[i]);
  return sum;
}

#if TRADEPLOT_X86

__attribute__((target("avx2"))) double l1_avx2(const double* a, const double* b,
                                               std::size_t n) {
  // |x| as a bitmask clear of the sign bit; four accumulators hide the
  // vaddpd latency on the 4-wide lanes.
  const __m256d sign_mask = _mm256_set1_pd(-0.0);
  __m256d acc0 = _mm256_setzero_pd();
  __m256d acc1 = _mm256_setzero_pd();
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256d d0 = _mm256_sub_pd(_mm256_loadu_pd(a + i), _mm256_loadu_pd(b + i));
    const __m256d d1 =
        _mm256_sub_pd(_mm256_loadu_pd(a + i + 4), _mm256_loadu_pd(b + i + 4));
    acc0 = _mm256_add_pd(acc0, _mm256_andnot_pd(sign_mask, d0));
    acc1 = _mm256_add_pd(acc1, _mm256_andnot_pd(sign_mask, d1));
  }
  for (; i + 4 <= n; i += 4) {
    const __m256d d = _mm256_sub_pd(_mm256_loadu_pd(a + i), _mm256_loadu_pd(b + i));
    acc0 = _mm256_add_pd(acc0, _mm256_andnot_pd(sign_mask, d));
  }
  const __m256d acc = _mm256_add_pd(acc0, acc1);
  const __m128d lo = _mm256_castpd256_pd128(acc);
  const __m128d hi = _mm256_extractf128_pd(acc, 1);
  const __m128d pair = _mm_add_pd(lo, hi);
  double sum = _mm_cvtsd_f64(_mm_add_sd(pair, _mm_unpackhi_pd(pair, pair)));
  for (; i < n; ++i) sum += std::abs(a[i] - b[i]);
  return sum;
}

bool detect_avx2() { return __builtin_cpu_supports("avx2") != 0; }

#endif

using Kernel = double (*)(const double*, const double*, std::size_t);

Kernel dispatch() {
#if TRADEPLOT_X86
  if (detect_avx2()) return &l1_avx2;
#endif
  return &l1_scalar;
}

Kernel kernel() {
  static const Kernel k = dispatch();
  return k;
}

}  // namespace

double l1_distance(const double* a, const double* b, std::size_t n) {
  return kernel()(a, b, n);
}

bool using_avx2() {
#if TRADEPLOT_X86
  return kernel() != &l1_scalar;
#else
  return false;
#endif
}

}  // namespace tradeplot::stats::simd
